// Directory state (paper §2, §3.1 and Figure 1).
//
// One DirEntry exists per memory block ever accessed globally. The entry
// combines the DASH-style state with the paper's LS extension fields:
// the last-reader (LR) bit-field and the LS bit ("tagged" here, since
// the AD technique reuses the same storage for its migratory bit). The
// 64-bit `sharers` word is an *encoding* owned by the active directory
// organisation (core/directory_policy.hpp): a presence bitmap under
// full-map, packed node pointers under limited-pointer, region bits
// under coarse-vector/sparse. The bitmap helpers below are the full-map
// encoding's accessors, used by the full-map policy and by tests.
//
// Storage is an open-addressing flat hash table (power-of-two capacity,
// linear probing, no tombstones — backward-shift deletion keeps probe
// chains intact for the sparse organisation's evictions) rather than
// std::unordered_map: the directory is consulted on every global access,
// so the hot path is one multiply-shift hash plus a short probe over a
// contiguous 24-byte-slot array instead of a bucket pointer chase. A
// one-entry MRU cache short-circuits the common same-block re-access
// (spin-lock hand-offs, load-store sequences). See docs/PERFORMANCE.md.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "telemetry/registry.hpp"

namespace lssim {

/// Memory-side (home) state of a block, Figure 1 of the paper.
/// kExcl is the figure's "Load-Store" state: exactly one cache holds the
/// block exclusively after an exclusive read reply; the home learns about
/// the owning write lazily (the whole point is that the write sends no
/// message), so kExcl covers both the written and not-yet-written owner.
/// kOwned (MOESI / Dragon only): `owner` holds a modified copy AND other
/// caches may hold shared copies — the `sharers` word encodes the
/// NON-owner sharers. Home memory is stale; the owner services reads and
/// owes the eventual writeback.
enum class DirState : std::uint8_t {
  kUncached = 0,
  kShared,
  kDirty,
  kExcl,
  kOwned,
};

[[nodiscard]] constexpr const char* to_string(DirState s) noexcept {
  switch (s) {
    case DirState::kUncached: return "Uncached";
    case DirState::kShared: return "Shared";
    case DirState::kDirty: return "Dirty";
    case DirState::kExcl: return "Load-Store";
    case DirState::kOwned: return "Owned";
  }
  return "?";
}

struct DirEntry {
  /// Organisation-encoded sharer word (kShared): a presence bitmap under
  /// full-map, packed node pointers under limited-pointer, region bits
  /// under coarse-vector/sparse. Only the active DirectoryPolicy and the
  /// bitmap helpers below interpret it.
  std::uint64_t sharers = 0;
  NodeId owner = kInvalidNode;        ///< Valid in kDirty / kExcl.
  NodeId last_reader = kInvalidNode;  ///< Paper's LR field.
  NodeId last_writer = kInvalidNode;  ///< Used by AD's migratory detection.
  DirState state = DirState::kUncached;
  bool tagged : 1 = false;            ///< LS bit / migratory bit.
  /// The organisation no longer knows the precise sharer set (Dir_iB
  /// pointer overflow, coarse regions wider than one node): invalidations
  /// must cover a superset and AD's migratory detector is blind.
  bool imprecise : 1 = false;
  std::uint8_t tag_progress : 3 = 0;  ///< Hysteresis counters (§5.5),
  std::uint8_t detag_progress : 3 = 0;  ///< depth <= 7 (bit-field width).

  /// Full-map-encoding accessors: bit n of `sharers` = node n (<= 64
  /// nodes). Organisations with other encodings go through their
  /// DirectoryPolicy instead.
  [[nodiscard]] int sharer_count() const noexcept {
    return std::popcount(sharers);
  }
  [[nodiscard]] bool is_sharer(NodeId node) const noexcept {
    return (sharers >> node) & 1u;
  }
  void add_sharer(NodeId node) noexcept { sharers |= std::uint64_t{1} << node; }
  void remove_sharer(NodeId node) noexcept {
    sharers &= ~(std::uint64_t{1} << node);
  }
};

// The sharer word, three 16-bit node ids, the state byte and the packed
// flag/hysteresis byte fit in exactly two words; a table slot (key +
// entry) is then 24 bytes, three per cache line. Widening DirEntry is a
// hot-path regression — think twice.
static_assert(sizeof(DirEntry) == 16, "DirEntry must stay two words");

class Directory {
 public:
  /// `default_tagged` implements the §5.5 variation where every block
  /// starts out tagged (first cold read returns an exclusive copy).
  explicit Directory(bool default_tagged = false)
      : default_tagged_(default_tagged) {}

  /// Publishes the directory's metrics (entry population) into
  /// `metrics`; pass null to detach. Registration only — hot-path entry
  /// creation then costs one branch plus one indexed bump.
  void attach_telemetry(MetricsRegistry* metrics);

  /// Entry for `block` (block-aligned address), created on first use.
  ///
  /// The reference is invalidated by a *later* entry() call that inserts
  /// (the table may grow), exactly like iterator invalidation on a
  /// rehashing map. The transaction engine acquires at most one new
  /// entry per coherence transaction (victim blocks were cached, so
  /// their entries already exist), which keeps every held reference
  /// valid for the duration of a transaction.
  [[nodiscard]] DirEntry& entry(Addr block) {
    assert(block != kEmptyKey && "block address collides with sentinel");
    if (mru_key_ == block) {
      return slots_[mru_index_].entry;
    }
    if (slots_.empty()) {
      grow(kInitialCapacity);
    }
    std::size_t i = probe_start(block);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == block) {
        remember(block, i);
        return slot.entry;
      }
      if (slot.key == kEmptyKey) {
        if (size_ + 1 > capacity_limit()) {
          grow(slots_.size() * 2);
          return insert_new(block);  // Re-probe in the grown table.
        }
        return fill_slot(i, block);
      }
      i = (i + 1) & mask_;
    }
  }

  /// Host-cache warming hint: pulls `block`'s home probe slot into the
  /// host cache ahead of the entry() an upcoming global transaction will
  /// perform. No simulated effect (see Cache::prefetch).
  void prefetch(Addr block) const noexcept {
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[probe_start(block)], 1);
    }
  }

  /// Read-only lookup that does not create an entry.
  [[nodiscard]] const DirEntry* find(Addr block) const noexcept {
    // The sentinel would false-hit the MRU check of a never-grown table
    // (mru_key_ starts as kEmptyKey) and index an empty slot vector.
    assert(block != kEmptyKey && "block address collides with sentinel");
    if (mru_key_ == block) {
      return &slots_[mru_index_].entry;
    }
    if (slots_.empty()) {
      return nullptr;
    }
    std::size_t i = probe_start(block);
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.key == block) {
        return &slot.entry;
      }
      if (slot.key == kEmptyKey) {
        return nullptr;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Removes `block`'s entry (sparse-organisation eviction). Uses
  /// backward-shift deletion so probe chains need no tombstones; any
  /// held entry reference and the MRU cache are invalidated. Returns
  /// false when no entry exists.
  bool erase(Addr block) noexcept {
    assert(block != kEmptyKey && "block address collides with sentinel");
    if (slots_.empty()) {
      return false;
    }
    std::size_t i = probe_start(block);
    while (slots_[i].key != block) {
      if (slots_[i].key == kEmptyKey) {
        return false;
      }
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (slots_[j].key == kEmptyKey) {
        break;
      }
      // Slot j's element may shift up only if its preferred position
      // lies at or before the hole (cyclic probe distance).
      const std::size_t preferred = probe_start(slots_[j].key);
      if (((j - preferred) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = Slot{};
    size_ -= 1;
    mru_key_ = kEmptyKey;  // Slots may have shifted.
    return true;
  }

  /// Pre-sizes the table so `entries` entries fit without growing —
  /// entry() then never invalidates references by rehashing (the sparse
  /// organisation relies on this: its population is bounded up front).
  void reserve(std::size_t entries) {
    std::size_t capacity = std::max(slots_.size(), kInitialCapacity);
    while (capacity - capacity / 4 < entries) {
      capacity *= 2;
    }
    if (capacity > slots_.size()) {
      grow(capacity);
    }
  }

  /// Deterministic eviction victim for inserting `block` into a full
  /// sparse directory: the first occupied slot at or after `block`'s
  /// preferred position — the entry a real set-limited directory cache
  /// would displace. The table must be non-empty.
  [[nodiscard]] Addr victim_for(Addr block) const noexcept {
    assert(size_ > 0);
    std::size_t i = probe_start(block);
    while (slots_[i].key == kEmptyKey) {
      i = (i + 1) & mask_;
    }
    return slots_[i].key;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Allocated slots (tests; always a power of two once non-empty).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

  /// Visits every entry in slot order (unspecified, like the map it
  /// replaced — callers must not depend on it).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.entry);
    }
  }

 private:
  struct Slot {
    Addr key = kEmptyKey;
    DirEntry entry;
  };

  /// Block addresses are block-aligned (blocks are >= 8 bytes), so the
  /// all-ones address can never name a real block.
  static constexpr Addr kEmptyKey = ~Addr{0};
  static constexpr std::size_t kInitialCapacity = 256;

  [[nodiscard]] std::size_t probe_start(Addr block) const noexcept {
    // Fibonacci multiply-shift: block addresses share low zero bits
    // (block alignment) and arithmetic strides; the multiply diffuses
    // both into the top bits we keep.
    return static_cast<std::size_t>(
               (block * 0x9E3779B97F4A7C15ull) >> shift_) &
           mask_;
  }

  /// Grow threshold: 3/4 load factor keeps linear probe chains short.
  [[nodiscard]] std::size_t capacity_limit() const noexcept {
    return slots_.size() - slots_.size() / 4;
  }

  DirEntry& fill_slot(std::size_t i, Addr block) {
    Slot& slot = slots_[i];
    slot.key = block;
    slot.entry = DirEntry{};
    if (default_tagged_) {
      slot.entry.tagged = true;
    }
    size_ += 1;
    if (metrics_ != nullptr) {
      metrics_->add(entries_created_);
    }
    remember(block, i);
    return slot.entry;
  }

  /// Slow path after a grow: probe again (slots moved) and fill.
  DirEntry& insert_new(Addr block) {
    std::size_t i = probe_start(block);
    while (slots_[i].key != kEmptyKey) {
      assert(slots_[i].key != block);
      i = (i + 1) & mask_;
    }
    return fill_slot(i, block);
  }

  void grow(std::size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    shift_ = 64 - std::countr_zero(new_capacity);
    mru_key_ = kEmptyKey;  // Slot indices moved.
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      std::size_t i = probe_start(slot.key);
      while (slots_[i].key != kEmptyKey) {
        i = (i + 1) & mask_;
      }
      slots_[i] = slot;
    }
  }

  void remember(Addr block, std::size_t index) noexcept {
    mru_key_ = block;
    mru_index_ = index;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  Addr mru_key_ = kEmptyKey;
  std::size_t mru_index_ = 0;
  bool default_tagged_;
  MetricsRegistry* metrics_ = nullptr;
  CounterHandle entries_created_;
};

}  // namespace lssim
