// Full-map directory state (paper §2, §3.1 and Figure 1).
//
// One DirEntry exists per memory block ever accessed globally. The entry
// combines the DASH-style full-map state with the paper's LS extension
// fields: the last-reader (LR) bit-field and the LS bit ("tagged" here,
// since the AD technique reuses the same storage for its migratory bit).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"
#include "telemetry/registry.hpp"

namespace lssim {

/// Memory-side (home) state of a block, Figure 1 of the paper.
/// kExcl is the figure's "Load-Store" state: exactly one cache holds the
/// block exclusively after an exclusive read reply; the home learns about
/// the owning write lazily (the whole point is that the write sends no
/// message), so kExcl covers both the written and not-yet-written owner.
enum class DirState : std::uint8_t {
  kUncached = 0,
  kShared,
  kDirty,
  kExcl,
};

[[nodiscard]] constexpr const char* to_string(DirState s) noexcept {
  switch (s) {
    case DirState::kUncached: return "Uncached";
    case DirState::kShared: return "Shared";
    case DirState::kDirty: return "Dirty";
    case DirState::kExcl: return "Load-Store";
  }
  return "?";
}

struct DirEntry {
  DirState state = DirState::kUncached;
  std::uint64_t sharers = 0;          ///< Full-map presence bits (kShared).
  NodeId owner = kInvalidNode;        ///< Valid in kDirty / kExcl.
  NodeId last_reader = kInvalidNode;  ///< Paper's LR field.
  NodeId last_writer = kInvalidNode;  ///< Used by AD's migratory detection.
  bool tagged = false;                ///< LS bit / migratory bit.
  /// kLimitedPtr: the sharer pointers overflowed; the directory no longer
  /// knows the precise sharer set and must broadcast invalidations. (The
  /// `sharers` bitmap is still maintained as simulation ground truth for
  /// cache bookkeeping.)
  bool ptr_overflow = false;
  std::uint8_t tag_progress = 0;      ///< Hysteresis counters (§5.5).
  std::uint8_t detag_progress = 0;

  [[nodiscard]] int sharer_count() const noexcept {
    return __builtin_popcountll(sharers);
  }
  [[nodiscard]] bool is_sharer(NodeId node) const noexcept {
    return (sharers >> node) & 1u;
  }
  void add_sharer(NodeId node) noexcept { sharers |= std::uint64_t{1} << node; }
  void remove_sharer(NodeId node) noexcept {
    sharers &= ~(std::uint64_t{1} << node);
  }
};

class Directory {
 public:
  /// `default_tagged` implements the §5.5 variation where every block
  /// starts out tagged (first cold read returns an exclusive copy).
  explicit Directory(bool default_tagged = false)
      : default_tagged_(default_tagged) {}

  /// Publishes the directory's metrics (entry population) into
  /// `metrics`; pass null to detach. Registration only — hot-path entry
  /// creation then costs one branch plus one indexed bump.
  void attach_telemetry(MetricsRegistry* metrics);

  /// Entry for `block` (block-aligned address), created on first use.
  [[nodiscard]] DirEntry& entry(Addr block) {
    auto [it, inserted] = entries_.try_emplace(block);
    if (inserted) {
      if (default_tagged_) {
        it->second.tagged = true;
      }
      if (metrics_ != nullptr) {
        metrics_->add(entries_created_);
      }
    }
    return it->second;
  }

  /// Read-only lookup that does not create an entry.
  [[nodiscard]] const DirEntry* find(Addr block) const noexcept {
    const auto it = entries_.find(block);
    return it == entries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [block, entry] : entries_) fn(block, entry);
  }

 private:
  std::unordered_map<Addr, DirEntry> entries_;
  bool default_tagged_;
  MetricsRegistry* metrics_ = nullptr;
  CounterHandle entries_created_;
};

}  // namespace lssim
