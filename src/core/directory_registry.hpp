// Name-keyed directory-organisation registry.
//
// The single resolution point between directory-organisation *names*
// (CLI --directory/--directories values, manifest documents, report
// rows) and *implementations* (DirectoryPolicy subclasses under
// src/core/directories/). Names and aliases come from the shared
// kDirectoryNameTable in sim/config.hpp, so printing and parsing
// round-trip exactly; this module adds the factory per kind and a
// one-line summary. It mirrors core/protocol_registry.hpp — the two
// registries are the machine's two orthogonal axes (what the caches do
// x what the home tracks).
//
// Adding an organisation:
//   1. add the enum value + name-table row in sim/config.hpp,
//   2. write the DirectoryPolicy under src/core/directories/,
//   3. add its registration row in directory_registry.cpp.
// See docs/PROTOCOL.md, "Adding a directory organization".
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/directory_policy.hpp"
#include "sim/config.hpp"

namespace lssim {

struct DirectoryInfo {
  DirectoryKind kind;
  const char* name;     ///< Canonical name (== directory_name(kind)).
  const char* summary;  ///< One-liner for --help and docs.
  std::unique_ptr<DirectoryPolicy> (*make)(const MachineConfig& config);
};

/// All registered organisations, in DirectoryKind order.
[[nodiscard]] std::span<const DirectoryInfo> registered_directories();

/// Registry entry for `kind` (every kind is registered).
[[nodiscard]] const DirectoryInfo& directory_info(DirectoryKind kind);

/// Resolves a canonical name or alias (case-insensitive) to its registry
/// entry; null when unknown.
[[nodiscard]] const DirectoryInfo* find_directory(std::string_view name);

/// Canonical names of every registered organisation, joined by
/// `separator` — for error messages and usage text.
[[nodiscard]] std::string registered_directory_names(
    const char* separator = ", ");

/// Every registered kind, in registry order.
[[nodiscard]] std::vector<DirectoryKind> all_directory_kinds();

/// Constructs the organisation for `config.directory_scheme`.
[[nodiscard]] std::unique_ptr<DirectoryPolicy> make_directory_policy(
    const MachineConfig& config);

}  // namespace lssim
