// Name-keyed protocol registry.
//
// The single resolution point between protocol *names* (CLI --protocol/
// --protocols values, manifest documents, report rows) and protocol
// *implementations* (CoherencePolicy subclasses under src/core/policies/).
// Names and aliases come from the shared kProtocolNameTable in
// sim/config.hpp, so printing and parsing round-trip exactly; this
// module adds the factory per kind and a one-line summary.
//
// Adding a protocol:
//   1. add the enum value + name-table row in sim/config.hpp,
//   2. write the CoherencePolicy under src/core/policies/,
//   3. add its registration row in protocol_registry.cpp.
// Everything else — driver flags, workload harness, stats rows,
// manifests, report output — resolves through this registry.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/coherence_policy.hpp"
#include "sim/config.hpp"

namespace lssim {

struct ProtocolInfo {
  ProtocolKind kind;
  const char* name;     ///< Canonical name (== protocol_name(kind)).
  const char* summary;  ///< One-liner for --help and docs.
  std::unique_ptr<CoherencePolicy> (*make)(const MachineConfig& config);
};

/// All registered protocols, in ProtocolKind order.
[[nodiscard]] std::span<const ProtocolInfo> registered_protocols();

/// Registry entry for `kind` (every kind is registered).
[[nodiscard]] const ProtocolInfo& protocol_info(ProtocolKind kind);

/// Resolves a canonical name or alias (case-insensitive) to its registry
/// entry; null when unknown.
[[nodiscard]] const ProtocolInfo* find_protocol(std::string_view name);

/// Canonical names of every registered protocol, joined by `separator` —
/// for error messages and usage text.
[[nodiscard]] std::string registered_protocol_names(
    const char* separator = ", ");

/// Every registered kind, in registry order (e.g. for --compare).
[[nodiscard]] std::vector<ProtocolKind> all_protocol_kinds();

/// Constructs the policy for `config.protocol.kind`.
[[nodiscard]] std::unique_ptr<CoherencePolicy> make_policy(
    const MachineConfig& config);

}  // namespace lssim
