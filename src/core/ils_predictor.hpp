// Instruction-centric load-store prediction (extension).
//
// The paper's §6 contrasts its data-centric LS technique with
// instruction-centric ones: hardware that watches the *instruction
// stream* for loads that are soon followed by a store to the same
// address (Kaxiras & Goodman HPCA'99; Nilsson & Dahlgren ICPP'99) and
// issues such loads as load-exclusive. This module implements that
// comparator ("ILS", ProtocolKind::kIls):
//
//  * each processor has a predictor table keyed by the static access
//    site of a load (derived from the source location of the workload's
//    read call — the simulator's stand-in for the program counter);
//  * when a store hits a block whose most recent load (by this
//    processor) came from site S, S's confidence rises;
//  * a load from a site with confidence >= threshold requests an
//    exclusive copy (fills LStemp, like an LS-tagged read);
//  * a granted exclusive copy that is downgraded or replaced before the
//    owning write penalises the granting site (misprediction).
//
// The directory's LS/migratory bit is unused under kIls: all policy
// lives in the per-processor tables, which is precisely why the
// technique struggles on workloads whose sites touch both private and
// read-shared data (the ICPP'99 OLTP finding the paper builds on).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace lssim {

class IlsPredictor {
 public:
  /// `threshold`: confidence needed to predict; `max_confidence` caps
  /// training; `penalty` is subtracted on a misprediction.
  IlsPredictor(int num_nodes, int threshold = 2, int max_confidence = 3,
               int penalty = 2)
      : per_node_(static_cast<std::size_t>(num_nodes)),
        threshold_(threshold),
        max_confidence_(max_confidence),
        penalty_(penalty) {}

  /// Records a load and returns true when the site predicts that a store
  /// will follow (the load should request an exclusive copy).
  bool on_load(NodeId node, Addr block, std::uint32_t site) {
    NodeState& st = per_node_[node];
    st.recent_load[block] = site;
    const auto it = st.confidence.find(site);
    return it != st.confidence.end() && it->second >= threshold_;
  }

  /// Records a store; trains the site of the most recent load to the
  /// same block by this processor.
  void on_store(NodeId node, Addr block) {
    NodeState& st = per_node_[node];
    const auto it = st.recent_load.find(block);
    if (it == st.recent_load.end()) {
      return;
    }
    int& conf = st.confidence[it->second];
    conf = std::min(conf + 1, max_confidence_);
    st.recent_load.erase(it);  // The pair is consumed.
  }

  /// Penalises the site whose exclusive grant went unused (foreign
  /// access or replacement before the owning write).
  void on_misprediction(NodeId node, std::uint32_t site) {
    NodeState& st = per_node_[node];
    int& conf = st.confidence[site];
    conf -= penalty_;
    if (conf < 0) conf = 0;
  }

  [[nodiscard]] int confidence(NodeId node, std::uint32_t site) const {
    const auto& table = per_node_[node].confidence;
    const auto it = table.find(site);
    return it == table.end() ? 0 : it->second;
  }

 private:
  struct NodeState {
    // Idealized (unbounded) tables; a real implementation would use small
    // tagged arrays. The idealization favours ILS, which makes the
    // comparison conservative for LS.
    std::unordered_map<Addr, std::uint32_t> recent_load;
    std::unordered_map<std::uint32_t, int> confidence;
  };

  std::vector<NodeState> per_node_;
  int threshold_;
  int max_confidence_;
  int penalty_;
};

}  // namespace lssim
