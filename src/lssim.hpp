// lssim — umbrella header for the Load-Store Coherence Protocol Simulator.
//
// Reproduction of Nilsson & Dahlgren, "Reducing Ownership Overhead for
// Load-Store Sequences in Cache-Coherent Multiprocessors", IPPS 2000.
//
// Typical use:
//   lssim::MachineConfig cfg =
//       lssim::MachineConfig::scientific_default(lssim::ProtocolKind::kLs);
//   lssim::System sys(cfg);
//   lssim::build_mp3d(sys, {});
//   sys.run();
//   lssim::RunResult r = lssim::collect(sys);
#pragma once

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "core/coherence_policy.hpp"
#include "core/directory.hpp"
#include "core/ils_predictor.hpp"
#include "core/protocol.hpp"
#include "core/protocol_registry.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "machine/processor.hpp"
#include "machine/system.hpp"
#include "mem/address_space.hpp"
#include "mem/shared_heap.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"
#include "stats/false_sharing.hpp"
#include "stats/ls_oracle.hpp"
#include "stats/report.hpp"
#include "stats/stats.hpp"
#include "stats/timeline.hpp"
#include "sync/barrier.hpp"
#include "telemetry/coherence_trace.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "sync/spinlock.hpp"
#include "sync/task_queue.hpp"
#include "trace/config_hash.hpp"
#include "trace/recorder.hpp"
#include "trace/replay_compare.hpp"
#include "trace/trace.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/harness.hpp"
#include "workloads/stencil.hpp"
#include "workloads/lu.hpp"
#include "workloads/micro.hpp"
#include "workloads/mp3d.hpp"
#include "workloads/oltp.hpp"
#include "workloads/radix.hpp"
