#include "cache/hierarchy.hpp"

#include <cassert>

namespace lssim {

CacheHierarchy::CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2)
    : l1_(l1), l2_(l2) {
  assert(l1.block_bytes == l2.block_bytes);
}

void CacheHierarchy::attach_telemetry(MetricsRegistry* metrics,
                                      NodeId node) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    return;
  }
  const MetricLabels labels{{"node", std::to_string(node)}};
  l2_fills_ = metrics_->counter("cache.l2_fills", labels);
  l2_evictions_ = metrics_->counter("cache.l2_evictions", labels);
  l1_refills_ = metrics_->counter("cache.l1_refills", labels);
}

ProbeResult CacheHierarchy::probe(Addr block) const noexcept {
  ProbeResult result;
  if (const CacheLine* line2 = l2_.find(block)) {
    result.l2_hit = true;
    result.state = line2->state;
    result.l1_hit = l1_.find(block) != nullptr;
  }
  return result;
}

CacheLine CacheHierarchy::fill(Addr block, CacheState state) {
  assert(l2_.find(block) == nullptr);
  const CacheLine l2_victim = l2_.insert(block, state);
  if (l2_victim.valid()) {
    l1_.invalidate(l2_victim.block);  // Inclusion.
  }
  if (l1_.find(block) == nullptr) {
    (void)l1_.insert_silent(block, state);  // L1 victim silent: L2 retains it.
  }
  if (metrics_ != nullptr) {
    metrics_->add(l2_fills_);
    if (l2_victim.valid()) {
      metrics_->add(l2_evictions_);
    }
  }
  return l2_victim;
}

void CacheHierarchy::refill_l1(Addr block) {
  const CacheLine* line2 = l2_.find(block);
  assert(line2 != nullptr && "refill_l1 requires an L2 hit");
  (void)refill_l1(*line2);
}

CacheLine* CacheHierarchy::refill_l1(const CacheLine& line2) {
  assert(l1_.find(line2.block) == nullptr);
  CacheLine* line1 = l1_.insert_silent(line2.block, line2.state);
  if (metrics_ != nullptr) {
    metrics_->add(l1_refills_);
  }
  return line1;
}

void CacheHierarchy::set_state(Addr block, CacheState state) noexcept {
  CacheLine* line2 = l2_.find(block);
  assert(line2 != nullptr);
  line2->state = state;
  if (CacheLine* line1 = l1_.find(block)) {
    line1->state = state;
  }
}

CacheLine CacheHierarchy::invalidate(Addr block) noexcept {
  l1_.invalidate(block);
  return l2_.invalidate(block);
}

void CacheHierarchy::record_access(Addr block,
                                   std::uint64_t word_mask) noexcept {
  CacheLine* line2 = l2_.find(block);
  assert(line2 != nullptr);
  l2_.touch(*line2);
  line2->accessed_words |= word_mask;
  if (CacheLine* line1 = l1_.find(block)) {
    l1_.touch(*line1);
  }
}

bool CacheHierarchy::check_inclusion() const {
  bool ok = true;
  const_cast<Cache&>(l1_).for_each_valid([&](const CacheLine& line1) {
    const CacheLine* line2 = l2_.find(line1.block);
    if (line2 == nullptr || line2->state != line1.state) {
      ok = false;
    }
  });
  return ok;
}

}  // namespace lssim
