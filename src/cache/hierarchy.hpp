// Two-level inclusive cache hierarchy for one node.
//
// Inclusion invariant: every valid L1 line is also valid in L2 with the
// same coherence state. The L2 copy is authoritative; L1 victims are
// silent (the L2 still holds the block), while L2 victims must be
// surfaced to the coherence protocol (writeback or replacement hint) and
// force the corresponding L1 line out.
#pragma once

#include <cstdint>

#include "cache/cache.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "telemetry/registry.hpp"

namespace lssim {

struct ProbeResult {
  bool l1_hit = false;
  bool l2_hit = false;
  CacheState state = CacheState::kInvalid;
};

/// Resolved line pointers from a single hierarchy lookup. `l1` is only
/// probed (and can only be non-null) when `l2` hit — inclusion makes an
/// L1-only hit impossible. Pointers stay valid until the next structural
/// change (fill / invalidate) of the owning cache.
struct LineLookup {
  CacheLine* l1 = nullptr;
  CacheLine* l2 = nullptr;
};

class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2);

  /// Publishes this node's cache activity (L2 fills/evictions, L1
  /// refills) as per-node labelled counters. Registration only; the fill
  /// paths then pay one branch per event when attached, zero bumps when
  /// not.
  void attach_telemetry(MetricsRegistry* metrics, NodeId node);

  [[nodiscard]] ProbeResult probe(Addr block) const noexcept;

  /// probe(), but returning the resolved line pointers so the access hot
  /// path never repeats the associative search.
  [[nodiscard]] LineLookup lookup(Addr block) noexcept {
    LineLookup r;
    r.l2 = l2_.find(block);
    if (r.l2 != nullptr) {
      r.l1 = l1_.find(block);
    }
    return r;
  }

  /// Inserts `block` in both levels after a global fill. Returns a copy of
  /// the evicted L2 line (state kInvalid when none); the caller owns any
  /// resulting writeback/hint. The matching L1 copy of the L2 victim is
  /// invalidated to preserve inclusion.
  CacheLine fill(Addr block, CacheState state);

  /// On an L1 miss that hits in L2, refill L1 from L2 (silent L1 victim).
  void refill_l1(Addr block);

  /// refill_l1 for a caller that already resolved the L2 line; returns
  /// the freshly inserted L1 line.
  CacheLine* refill_l1(const CacheLine& line2);

  /// Sets the coherence state of `block` in both levels (must be present
  /// in L2).
  void set_state(Addr block, CacheState state) noexcept;

  /// Invalidates `block` in both levels; returns the removed L2 line.
  CacheLine invalidate(Addr block) noexcept;

  /// Records a hit for LRU, and accumulates the accessed-word mask on the
  /// L2 line (used by the false-sharing classifier).
  void record_access(Addr block, std::uint64_t word_mask) noexcept;

  /// record_access for a caller holding the resolved line pointers (the
  /// access hot path). Same LRU-touch order: L2 first, then L1.
  void record_access(CacheLine* line1, CacheLine& line2,
                     std::uint64_t word_mask) noexcept {
    l2_.touch(line2);
    line2.accessed_words |= word_mask;
    if (line1 != nullptr) {
      l1_.touch(*line1);
    }
  }

  [[nodiscard]] Cache& l1() noexcept { return l1_; }
  [[nodiscard]] Cache& l2() noexcept { return l2_; }
  [[nodiscard]] const Cache& l1() const noexcept { return l1_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }
  [[nodiscard]] std::uint32_t block_bytes() const noexcept {
    return l2_.block_bytes();
  }

  /// Verifies the inclusion invariant (tests). Returns true when every
  /// valid L1 line has a same-state L2 twin.
  [[nodiscard]] bool check_inclusion() const;

 private:
  Cache l1_;
  Cache l2_;
  MetricsRegistry* metrics_ = nullptr;
  CounterHandle l2_fills_;
  CounterHandle l2_evictions_;
  CounterHandle l1_refills_;
};

}  // namespace lssim
