#include "cache/cache.hpp"

#include <cassert>

namespace lssim {

Cache::Cache(const CacheConfig& config)
    : config_(config),
      num_sets_(config.num_sets()),
      set_mask_(num_sets_ - 1),
      block_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.block_bytes))),
      block_mask_(~static_cast<Addr>(config.block_bytes - 1)),
      lru_live_(config.assoc > 1) {
  assert(num_sets_ > 0);
  assert(std::has_single_bit(config.block_bytes));
  assert(std::has_single_bit(static_cast<std::uint64_t>(num_sets_)));
  lines_.resize(num_sets_ * config_.assoc);
}

std::size_t Cache::valid_lines() const noexcept {
  std::size_t count = 0;
  for (const auto& line : lines_) {
    if (line.valid()) ++count;
  }
  return count;
}

}  // namespace lssim
