#include "cache/cache.hpp"

#include <cassert>

namespace lssim {

Cache::Cache(const CacheConfig& config)
    : config_(config), num_sets_(config.num_sets()) {
  assert(num_sets_ > 0);
  lines_.resize(num_sets_ * config_.assoc);
}

CacheLine* Cache::find(Addr block) noexcept {
  const std::size_t base = set_index(block) * config_.assoc;
  for (std::uint32_t way = 0; way < config_.assoc; ++way) {
    CacheLine& line = lines_[base + way];
    if (line.valid() && line.block == block) {
      return &line;
    }
  }
  return nullptr;
}

const CacheLine* Cache::find(Addr block) const noexcept {
  return const_cast<Cache*>(this)->find(block);
}

CacheLine Cache::insert(Addr block, CacheState state) {
  assert(state != CacheState::kInvalid);
  assert(find(block) == nullptr && "block already present");
  const std::size_t base = set_index(block) * config_.assoc;
  CacheLine* victim = &lines_[base];
  for (std::uint32_t way = 0; way < config_.assoc; ++way) {
    CacheLine& line = lines_[base + way];
    if (!line.valid()) {
      victim = &line;
      break;
    }
    if (line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  const CacheLine evicted = *victim;
  *victim = CacheLine{};
  victim->block = block;
  victim->state = state;
  victim->last_use = ++use_clock_;
  return evicted;
}

CacheLine Cache::invalidate(Addr block) noexcept {
  CacheLine* line = find(block);
  if (line == nullptr) {
    return CacheLine{};
  }
  const CacheLine removed = *line;
  *line = CacheLine{};
  return removed;
}

std::size_t Cache::valid_lines() const noexcept {
  std::size_t count = 0;
  for (const auto& line : lines_) {
    if (line.valid()) ++count;
  }
  return count;
}

}  // namespace lssim
