// Set-associative cache with LRU replacement.
//
// Caches here track coherence state and replacement behaviour only; data
// values live authoritatively in the simulated AddressSpace (the
// simulation is sequentially consistent and transactions are atomic, so a
// single value copy is exact).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace lssim {

/// Cache-line coherence state. kLStemp is the paper's extra state: an
/// exclusive-but-not-yet-written copy delivered to a read of a tagged
/// block (used by both the LS and the AD technique in this codebase; it
/// doubles as MESI's Exclusive state — same semantics, different
/// admission rule). kOwned is the MOESI/Dragon Owned state: a modified
/// copy that other caches also share; the owner services read misses and
/// is responsible for the eventual writeback (home memory is stale).
enum class CacheState : std::uint8_t {
  kInvalid = 0,
  kShared,
  kModified,
  kLStemp,
  kOwned,
};

[[nodiscard]] constexpr const char* to_string(CacheState s) noexcept {
  switch (s) {
    case CacheState::kInvalid: return "Invalid";
    case CacheState::kShared: return "Shared";
    case CacheState::kModified: return "Modified";
    case CacheState::kLStemp: return "LStemp";
    case CacheState::kOwned: return "Owned";
  }
  return "?";
}

struct CacheLine {
  Addr block = 0;  ///< Block-aligned address; meaningful iff state valid.
  CacheState state = CacheState::kInvalid;
  std::uint64_t last_use = 0;
  /// Access site whose prediction granted this exclusive copy (kIls).
  std::uint32_t grant_site = 0;
  // -- Dubois false-sharing bookkeeping (maintained on L2 lines only) --
  std::uint64_t accessed_words = 0;   ///< Words touched this lifetime.
  std::uint64_t fs_foreign_mask = 0;  ///< Foreign-written words at fill.
  bool fs_pending = false;  ///< Fill was a coherence miss, unclassified.

  [[nodiscard]] bool valid() const noexcept {
    return state != CacheState::kInvalid;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Returns the line holding `block`, or nullptr on miss. Inline: this
  /// is the single hottest operation in the simulator (every simulated
  /// access probes at least one level).
  [[nodiscard]] CacheLine* find(Addr block) noexcept {
    const std::size_t base = set_index(block) * config_.assoc;
    for (std::uint32_t way = 0; way < config_.assoc; ++way) {
      CacheLine& line = lines_[base + way];
      if (line.valid() && line.block == block) {
        return &line;
      }
    }
    return nullptr;
  }
  [[nodiscard]] const CacheLine* find(Addr block) const noexcept {
    return const_cast<Cache*>(this)->find(block);
  }

  /// Inserts `block` with the given state, evicting the set's LRU line if
  /// needed. Returns a copy of the victim (state kInvalid when the set had
  /// a free way). `block` must not already be present.
  CacheLine insert(Addr block, CacheState state) {
    assert(state != CacheState::kInvalid);
    assert(find(block) == nullptr && "block already present");
    CacheLine* victim = victim_way(block);
    const CacheLine evicted = *victim;
    fill_way(victim, block, state);
    return evicted;
  }

  /// insert() for callers that discard the victim (L1 under inclusion:
  /// the L2 still holds any replaced block). Same replacement decision
  /// and LRU accounting; returns the newly filled line.
  CacheLine* insert_silent(Addr block, CacheState state) noexcept {
    assert(state != CacheState::kInvalid);
    assert(find(block) == nullptr && "block already present");
    CacheLine* victim = victim_way(block);
    fill_way(victim, block, state);
    return victim;
  }

  /// Removes `block` if present; returns a copy of the removed line
  /// (state kInvalid if it was not present).
  CacheLine invalidate(Addr block) noexcept {
    CacheLine* line = find(block);
    if (line == nullptr) {
      return CacheLine{};
    }
    const CacheLine removed = *line;
    *line = CacheLine{};
    return removed;
  }

  /// Marks a hit for LRU purposes. Direct-mapped caches skip the stamp:
  /// last_use is only ever read to pick a victim among multiple ways, so
  /// with one way per set it is dead — eliding the read-modify-write of
  /// use_clock_ changes no observable behaviour.
  void touch(CacheLine& line) noexcept {
    if (lru_live_) {
      line.last_use = ++use_clock_;
    }
  }

  /// Host-cache warming hint for trace replay: pulls `block`'s set into
  /// the host cache ahead of the access that will probe it. No simulated
  /// effect whatsoever — purely a memory-latency optimisation for
  /// callers that know future accesses (the replay engine does).
  void prefetch(Addr block) const noexcept {
    __builtin_prefetch(&lines_[set_index(block) * config_.assoc], 1);
  }

  [[nodiscard]] std::uint32_t block_bytes() const noexcept {
    return config_.block_bytes;
  }
  [[nodiscard]] Addr block_of(Addr addr) const noexcept {
    return addr & block_mask_;
  }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

  /// Number of valid lines (tests / diagnostics).
  [[nodiscard]] std::size_t valid_lines() const noexcept;

  /// Applies `fn` to every valid line (tests, end-of-run flushes).
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& line : lines_) {
      if (line.valid()) fn(line);
    }
  }
  template <typename Fn>
  void for_each_valid(Fn&& fn) const {
    for (const auto& line : lines_) {
      if (line.valid()) fn(line);
    }
  }

 private:
  // Block size and set count are validated powers of two, so indexing is
  // shift-and-mask — no division on the per-access path.
  [[nodiscard]] std::size_t set_index(Addr block) const noexcept {
    return static_cast<std::size_t>(block >> block_shift_) & set_mask_;
  }

  /// Replacement decision for `block`'s set: the first invalid way, else
  /// the way with the lowest LRU stamp.
  [[nodiscard]] CacheLine* victim_way(Addr block) noexcept {
    const std::size_t base = set_index(block) * config_.assoc;
    CacheLine* victim = &lines_[base];
    for (std::uint32_t way = 0; way < config_.assoc; ++way) {
      CacheLine& line = lines_[base + way];
      if (!line.valid()) {
        return &line;
      }
      if (line.last_use < victim->last_use) {
        victim = &line;
      }
    }
    return victim;
  }

  void fill_way(CacheLine* way, Addr block, CacheState state) noexcept {
    *way = CacheLine{};
    way->block = block;
    way->state = state;
    way->last_use = ++use_clock_;
  }

  CacheConfig config_;
  std::size_t num_sets_;
  std::size_t set_mask_;
  std::uint32_t block_shift_;
  Addr block_mask_;
  bool lru_live_;  ///< assoc > 1: replacement actually consults last_use.
  std::vector<CacheLine> lines_;  // num_sets_ * assoc, set-major.
  std::uint64_t use_clock_ = 0;
};

}  // namespace lssim
