// Set-associative cache with LRU replacement.
//
// Caches here track coherence state and replacement behaviour only; data
// values live authoritatively in the simulated AddressSpace (the
// simulation is sequentially consistent and transactions are atomic, so a
// single value copy is exact).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace lssim {

/// Cache-line coherence state. kLStemp is the paper's extra state: an
/// exclusive-but-not-yet-written copy delivered to a read of a tagged
/// block (used by both the LS and the AD technique in this codebase).
enum class CacheState : std::uint8_t {
  kInvalid = 0,
  kShared,
  kModified,
  kLStemp,
};

[[nodiscard]] constexpr const char* to_string(CacheState s) noexcept {
  switch (s) {
    case CacheState::kInvalid: return "Invalid";
    case CacheState::kShared: return "Shared";
    case CacheState::kModified: return "Modified";
    case CacheState::kLStemp: return "LStemp";
  }
  return "?";
}

struct CacheLine {
  Addr block = 0;  ///< Block-aligned address; meaningful iff state valid.
  CacheState state = CacheState::kInvalid;
  std::uint64_t last_use = 0;
  /// Access site whose prediction granted this exclusive copy (kIls).
  std::uint32_t grant_site = 0;
  // -- Dubois false-sharing bookkeeping (maintained on L2 lines only) --
  std::uint64_t accessed_words = 0;   ///< Words touched this lifetime.
  std::uint64_t fs_foreign_mask = 0;  ///< Foreign-written words at fill.
  bool fs_pending = false;  ///< Fill was a coherence miss, unclassified.

  [[nodiscard]] bool valid() const noexcept {
    return state != CacheState::kInvalid;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Returns the line holding `block`, or nullptr on miss.
  [[nodiscard]] CacheLine* find(Addr block) noexcept;
  [[nodiscard]] const CacheLine* find(Addr block) const noexcept;

  /// Inserts `block` with the given state, evicting the set's LRU line if
  /// needed. Returns a copy of the victim (state kInvalid when the set had
  /// a free way). `block` must not already be present.
  CacheLine insert(Addr block, CacheState state);

  /// Removes `block` if present; returns a copy of the removed line
  /// (state kInvalid if it was not present).
  CacheLine invalidate(Addr block) noexcept;

  /// Marks a hit for LRU purposes.
  void touch(CacheLine& line) noexcept { line.last_use = ++use_clock_; }

  [[nodiscard]] std::uint32_t block_bytes() const noexcept {
    return config_.block_bytes;
  }
  [[nodiscard]] Addr block_of(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(config_.block_bytes - 1);
  }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

  /// Number of valid lines (tests / diagnostics).
  [[nodiscard]] std::size_t valid_lines() const noexcept;

  /// Applies `fn` to every valid line (tests, end-of-run flushes).
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& line : lines_) {
      if (line.valid()) fn(line);
    }
  }
  template <typename Fn>
  void for_each_valid(Fn&& fn) const {
    for (const auto& line : lines_) {
      if (line.valid()) fn(line);
    }
  }

 private:
  [[nodiscard]] std::size_t set_index(Addr block) const noexcept {
    return static_cast<std::size_t>((block / config_.block_bytes) &
                                    (num_sets_ - 1));
  }

  CacheConfig config_;
  std::size_t num_sets_;
  std::vector<CacheLine> lines_;  // num_sets_ * assoc, set-major.
  std::uint64_t use_clock_ = 0;
};

}  // namespace lssim
