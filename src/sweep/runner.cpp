#include "sweep/runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "exec/parallel_executor.hpp"

namespace lssim {
namespace {

using Clock = std::chrono::steady_clock;

/// One unit's outcome inside a batch.
struct UnitOutcome {
  bool ok = false;
  double wall_seconds = 0.0;
  RunResult result;
  std::string error;
};

UnitOutcome execute_unit(const SweepUnit& unit, bool record_timing) {
  UnitOutcome outcome;
  try {
    DriverOptions options;
    options.workload = unit.workload;
    for (const auto& [key, value] : unit.params) {
      options.params[key] = value;
    }
    const WorkloadBuilder build = make_driver_builder(options);
    const auto start = Clock::now();
    outcome.result = run_experiment(unit.machine, build, unit.seed);
    if (record_timing) {
      outcome.wall_seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
    }
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

}  // namespace

SweepRecord make_sweep_record(const SweepUnit& unit, const RunResult& result,
                              double wall_seconds) {
  SweepRecord record;
  record.config_hash = unit.config_hash;
  record.label = unit.label;
  record.workload = unit.workload;
  record.params = unit.params;
  record.seed = unit.seed;
  record.nodes = unit.machine.num_nodes;
  record.l1_bytes = unit.machine.l1.size_bytes;
  record.l2_bytes = unit.machine.l2.size_bytes;
  record.block_bytes = unit.machine.l1.block_bytes;
  record.wall_seconds = wall_seconds;
  record.result = result;
  return record;
}

bool run_sweep(const std::vector<SweepUnit>& units, ResultsStore& store,
               const SweepRunOptions& options, SweepRunSummary* summary,
               std::string* error) {
  *summary = SweepRunSummary{};
  const int shard_count = options.shard_count > 0 ? options.shard_count : 1;
  const int shard_index = options.shard_index;

  // This shard's work list, minus what the store already has. The order
  // is the generator's unit order — the append-order determinism the
  // byte-identical resume contract rests on.
  std::vector<const SweepUnit*> pending;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(shard_count)) !=
        shard_index) {
      continue;
    }
    summary->in_shard += 1;
    if (store.contains(units[i].config_hash)) {
      summary->skipped += 1;
    } else {
      pending.push_back(&units[i]);
    }
  }

  const std::size_t batch_size = options.batch > 0 ? options.batch : 1;
  std::size_t done = 0;
  for (std::size_t base = 0; base < pending.size(); base += batch_size) {
    const std::size_t count =
        std::min(batch_size, pending.size() - base);
    const std::vector<UnitOutcome> outcomes =
        parallel_map<UnitOutcome>(count, options.jobs, [&](std::size_t i) {
          return execute_unit(*pending[base + i], options.record_timing);
        });
    // Append in unit order, skipping failures (a failed cell is absent
    // from the store, so a later run retries it).
    for (std::size_t i = 0; i < count; ++i) {
      const SweepUnit& unit = *pending[base + i];
      const UnitOutcome& outcome = outcomes[i];
      if (!outcome.ok) {
        summary->failed += 1;
        summary->errors.push_back(unit.label + ": " + outcome.error);
      } else {
        if (!store.append(make_sweep_record(unit, outcome.result,
                                            outcome.wall_seconds),
                          error)) {
          return false;
        }
        summary->executed += 1;
      }
      done += 1;
      if (options.progress) {
        options.progress(unit, done, pending.size());
      }
    }
  }
  return true;
}

}  // namespace lssim
