#include "sweep/results_store.hpp"

#include <filesystem>

#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "trace/config_hash.hpp"

namespace lssim {
namespace {

Json header_to_json(const ResultsStore::Provenance& provenance) {
  Json::Object o;
  o.emplace_back("kind", Json("header"));
  o.emplace_back("schema_version", Json(ResultsStore::kSchemaVersion));
  o.emplace_back("hash_version", Json(kSweepConfigHashVersion));
  o.emplace_back("generator", Json(provenance.generator));
  if (!provenance.git_commit.empty()) {
    o.emplace_back("git_commit", Json(provenance.git_commit));
  }
  o.emplace_back("host_hardware_concurrency",
                 Json(provenance.host_hardware_concurrency));
  o.emplace_back("jobs", Json(provenance.jobs));
  return Json(std::move(o));
}

/// Parses one line. Returns false on malformed JSON; a well-formed line
/// of unknown kind sets `*skip` (preserved on disk, ignored in memory).
bool parse_line(const std::string& line, std::uint32_t* schema_version,
                SweepRecord* record, bool* is_header, bool* skip,
                std::string* error) {
  std::string parse_error;
  const Json doc = Json::parse(line, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  if (!doc.is_object()) {
    if (error != nullptr) *error = "store line is not a JSON object";
    return false;
  }
  const Json* kind = doc.find("kind");
  const std::string kind_name =
      (kind != nullptr && kind->is_string()) ? kind->as_string() : "";
  if (kind_name == "header") {
    const Json* version = doc.find("schema_version");
    if (version == nullptr || !version->is_number()) {
      if (error != nullptr) *error = "store header has no schema_version";
      return false;
    }
    *schema_version = static_cast<std::uint32_t>(version->as_uint());
    if (*schema_version > ResultsStore::kSchemaVersion) {
      if (error != nullptr) {
        *error = "store schema_version " + std::to_string(*schema_version) +
                 " is newer than this build (knows " +
                 std::to_string(ResultsStore::kSchemaVersion) + ")";
      }
      return false;
    }
    *is_header = true;
    return true;
  }
  if (kind_name != "result") {
    *skip = true;  // Forward compatibility: future record kinds.
    return true;
  }
  return sweep_record_from_json(doc, record, error);
}

}  // namespace

Json sweep_record_to_json(const SweepRecord& record) {
  Json::Object o;
  o.emplace_back("kind", Json("result"));
  o.emplace_back("hash", Json(format_config_hash(record.config_hash)));
  o.emplace_back("label", Json(record.label));
  o.emplace_back("workload", Json(record.workload));
  if (!record.params.empty()) {
    Json::Object params;
    for (const auto& [k, v] : record.params) params.emplace_back(k, Json(v));
    o.emplace_back("params", Json(std::move(params)));
  }
  o.emplace_back("seed", Json(record.seed));
  o.emplace_back("nodes", Json(record.nodes));
  o.emplace_back("l1_bytes", Json(record.l1_bytes));
  o.emplace_back("l2_bytes", Json(record.l2_bytes));
  o.emplace_back("block_bytes", Json(record.block_bytes));
  o.emplace_back("wall_seconds", Json(record.wall_seconds));
  o.emplace_back("result", run_result_to_json(record.result));
  return Json(std::move(o));
}

bool sweep_record_from_json(const Json& json, SweepRecord* out,
                            std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!json.is_object()) return fail("sweep record must be an object");
  *out = SweepRecord{};
  const Json* hash = json.find("hash");
  if (hash == nullptr || !hash->is_string() ||
      !parse_config_hash(hash->as_string(), &out->config_hash)) {
    return fail("sweep record needs a hex 'hash'");
  }
  if (const Json* label = json.find("label");
      label != nullptr && label->is_string()) {
    out->label = label->as_string();
  }
  if (const Json* workload = json.find("workload");
      workload != nullptr && workload->is_string()) {
    out->workload = workload->as_string();
  }
  if (const Json* params = json.find("params"); params != nullptr) {
    if (!params->is_object()) return fail("'params' must be an object");
    for (const auto& [k, v] : params->as_object()) {
      if (!v.is_string()) return fail("'params' values must be strings");
      out->params.emplace_back(k, v.as_string());
    }
  }
  const Json* seed = json.find("seed");
  if (seed != nullptr && seed->is_number()) out->seed = seed->as_uint();
  if (const Json* nodes = json.find("nodes");
      nodes != nullptr && nodes->is_number()) {
    out->nodes = static_cast<int>(nodes->as_uint());
  }
  const auto read_u32 = [&json](const char* key, std::uint32_t* field) {
    const Json* v = json.find(key);
    if (v != nullptr && v->is_number()) {
      *field = static_cast<std::uint32_t>(v->as_uint());
    }
  };
  read_u32("l1_bytes", &out->l1_bytes);
  read_u32("l2_bytes", &out->l2_bytes);
  read_u32("block_bytes", &out->block_bytes);
  if (const Json* wall = json.find("wall_seconds");
      wall != nullptr && wall->is_number()) {
    out->wall_seconds = wall->as_double();
  }
  const Json* result = json.find("result");
  if (result == nullptr) return fail("sweep record needs a 'result'");
  return run_result_from_json(*result, &out->result, error);
}

bool ResultsStore::open(const std::string& path, const Provenance& provenance,
                        std::string* error) {
  path_ = path;
  completed_.clear();
  records_.clear();
  duplicate_hashes_ = 0;

  // Parse whatever is already there, tracking the byte offset after the
  // last complete, well-formed line so an interrupted append (a partial
  // trailing line) can be truncated away before we continue.
  std::uint64_t good_bytes = 0;
  bool saw_header = false;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::string line;
      std::uint64_t consumed = 0;
      while (std::getline(in, line)) {
        const bool complete = !in.eof();  // getline at EOF: no final '\n'.
        consumed += line.size() + (complete ? 1 : 0);
        if (line.empty()) {
          if (complete) good_bytes = consumed;
          continue;
        }
        std::uint32_t schema_version = 0;
        SweepRecord record;
        bool is_header = false;
        bool skip = false;
        std::string line_error;
        if (!parse_line(line, &schema_version, &record, &is_header, &skip,
                        &line_error)) {
          if (complete) {
            // A complete but malformed line is corruption (mid-store) or
            // not a store at all (first line) — refuse rather than
            // silently truncating someone's file and appending over it.
            if (error != nullptr) {
              *error = path + ": malformed store line: " + line_error;
            }
            return false;
          }
          break;  // Partial trailing line: truncate here.
        }
        if (is_header) {
          saw_header = true;
        } else if (!skip) {
          if (!completed_.insert(record.config_hash).second) {
            duplicate_hashes_ += 1;
          }
          records_.push_back(std::move(record));
        }
        if (complete) good_bytes = consumed;
      }
      if (!saw_header && good_bytes > 0) {
        if (error != nullptr) {
          *error = path + ": not a sweep results store (no header line)";
        }
        return false;
      }
    }
  }

  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec && size > good_bytes) {
    std::filesystem::resize_file(path, good_bytes, ec);
    if (ec) {
      if (error != nullptr) {
        *error = path + ": cannot truncate partial line: " + ec.message();
      }
      return false;
    }
  }

  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) {
    if (error != nullptr) *error = path + ": cannot open for append";
    return false;
  }
  if (good_bytes == 0) {
    header_to_json(provenance).write(out_, 0);
    out_ << '\n';
    out_.flush();
    if (!out_) {
      if (error != nullptr) *error = path + ": failed writing header";
      return false;
    }
  }
  return true;
}

bool ResultsStore::load(const std::string& path,
                        std::vector<SweepRecord>* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return false;
  }
  out->clear();
  std::string line;
  bool saw_any = false;
  while (std::getline(in, line)) {
    const bool complete = !in.eof();
    if (line.empty()) continue;
    std::uint32_t schema_version = 0;
    SweepRecord record;
    bool is_header = false;
    bool skip = false;
    std::string line_error;
    if (!parse_line(line, &schema_version, &record, &is_header, &skip,
                    &line_error)) {
      if (!complete) break;  // Interrupted final append: ignore.
      if (error != nullptr) {
        *error = path + ": malformed store line: " + line_error;
      }
      return false;
    }
    saw_any = true;
    if (!is_header && !skip) out->push_back(std::move(record));
  }
  if (!saw_any) {
    if (error != nullptr) *error = path + ": empty store";
    return false;
  }
  return true;
}

bool ResultsStore::append(const SweepRecord& record, std::string* error) {
  if (!out_.is_open()) {
    if (error != nullptr) *error = "store is not open";
    return false;
  }
  sweep_record_to_json(record).write(out_, 0);
  out_ << '\n';
  out_.flush();
  if (!out_) {
    if (error != nullptr) *error = path_ + ": write failed";
    out_.close();
    return false;
  }
  if (!completed_.insert(record.config_hash).second) {
    duplicate_hashes_ += 1;
  }
  records_.push_back(record);
  return true;
}

}  // namespace lssim
