// Sharded, resumable sweep runner.
//
// Runs a generated sweep matrix (sweep/matrix.hpp) against a results
// store (sweep/results_store.hpp), fanning simulations out across host
// threads via the parallel executor (exec/parallel_executor.hpp) while
// keeping the store deterministic:
//
//   * Units whose sweep_config_hash is already in the store are skipped
//     — resuming an interrupted sweep re-executes nothing.
//   * Units execute in batches: each batch runs in parallel, then its
//     records are appended in unit order and flushed. An interruption
//     therefore loses at most one batch of work, and the store on disk
//     is always a prefix of the uninterrupted store — so a resumed run
//     produces a byte-identical final store (with timing capture off;
//     wall-clock fields are the one nondeterminism, and
//     record_timing=false zeroes them).
//   * Sharding splits a matrix across fleet machines: shard i of n runs
//     the units whose index ≡ i (mod n), each appending to its own
//     store. Stores stay per-shard; bench_compare.py --store consumes
//     any number of them.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sweep/matrix.hpp"
#include "sweep/results_store.hpp"

namespace lssim {

struct SweepRunOptions {
  /// Host worker threads per batch (<= 0 = all cores).
  int jobs = 1;
  /// This process runs units with index % shard_count == shard_index.
  int shard_index = 0;
  int shard_count = 1;
  /// Units per append wave (the resumability granularity).
  std::size_t batch = 16;
  /// Record per-unit wall clock. Off = reproducible stores (wall_seconds
  /// written as 0.0), the mode the byte-identical resume tests use.
  bool record_timing = true;
  /// Optional progress sink, called after every finished unit with
  /// (unit, completed-so-far, total-to-run). Invoked from the runner's
  /// coordinating thread only.
  std::function<void(const SweepUnit&, std::size_t, std::size_t)> progress;
};

struct SweepRunSummary {
  std::size_t in_shard = 0;  ///< Units this shard is responsible for.
  std::size_t skipped = 0;   ///< Already present in the store (resume).
  std::size_t executed = 0;  ///< Simulated and appended this run.
  std::size_t failed = 0;    ///< Threw; reported via `errors`, not stored.
  std::vector<std::string> errors;  ///< "label: what" per failed unit.
};

/// Runs every not-yet-completed unit of this shard. Returns false and
/// sets `*error` only on store I/O failure (unit failures are collected
/// in the summary — one broken cell must not kill a thousand-config
/// sweep).
bool run_sweep(const std::vector<SweepUnit>& units, ResultsStore& store,
               const SweepRunOptions& options, SweepRunSummary* summary,
               std::string* error);

/// Builds the SweepRecord for one executed unit (exposed for tests).
[[nodiscard]] SweepRecord make_sweep_record(const SweepUnit& unit,
                                            const RunResult& result,
                                            double wall_seconds);

}  // namespace lssim
