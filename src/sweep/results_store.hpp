// Versioned append-only results store for sweep runs.
//
// One JSONL file per store: a header line, then one record line per
// completed sweep cell, keyed by sweep_config_hash. Append-only is the
// point — a store is a measurement log, never rewritten, and
// tools/bench_compare.py --store diffs two of them (per-config
// regression gates) or trends across several.
//
//   {"kind":"header","schema_version":1,"hash_version":1,...}
//   {"kind":"result","hash":"0x…","label":…,…,"result":{…}}
//
// Crash tolerance: open() parses the existing file, remembers the byte
// offset after the last complete, well-formed line and truncates
// anything beyond it (an interrupted append leaves a partial last line).
// Because the runner appends records in unit order, a crashed or
// truncated store is always a *prefix* of the uninterrupted store, and a
// resumed sweep — which skips the completed hashes and continues in the
// same order — reproduces the uninterrupted file byte for byte (when
// timing capture is off; wall-clock fields are the one nondeterminism).
//
// Forward compatibility: record lines whose "kind" is unknown are
// preserved on disk and skipped on load; a header whose schema_version
// is newer than this build refuses to open (appending an old-layout
// record to a new-layout store would corrupt it).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "workloads/harness.hpp"

namespace lssim {

class Json;

/// One completed sweep cell.
struct SweepRecord {
  std::uint64_t config_hash = 0;
  std::string label;
  std::string workload;
  std::vector<std::pair<std::string, std::string>> params;
  std::uint64_t seed = 1;
  int nodes = 0;
  std::uint32_t l1_bytes = 0;
  std::uint32_t l2_bytes = 0;
  std::uint32_t block_bytes = 0;
  /// 0.0 when the sweep ran with timing capture off (reproducible-store
  /// mode; see SweepRunOptions::record_timing).
  double wall_seconds = 0.0;
  RunResult result;
};

class ResultsStore {
 public:
  static constexpr std::uint32_t kSchemaVersion = 1;

  /// Store-level provenance, written into the header line when a store
  /// is created (ignored when opening an existing one — provenance
  /// documents the capture that *started* the store).
  struct Provenance {
    std::string generator = "lssim_sweep";
    std::string git_commit;  ///< Empty = omitted.
    int host_hardware_concurrency = 0;
    int jobs = 0;
  };

  ResultsStore() = default;

  /// Opens `path` for appending, creating it (plus the header line) when
  /// absent or empty. Parses existing records into completed()/records()
  /// and truncates a trailing partial line. Returns false + `*error` on
  /// I/O failure, a malformed header, or a newer schema_version.
  bool open(const std::string& path, const Provenance& provenance,
            std::string* error);

  /// Read-only load (no truncation repair, no header requirement beyond
  /// validity) — what bench_compare-style consumers do. A trailing
  /// partial line is skipped, not an error.
  static bool load(const std::string& path, std::vector<SweepRecord>* out,
                   std::string* error);

  /// Appends one record line and flushes it to disk. Returns false +
  /// `*error` on I/O failure (the store is closed; a partial line, if
  /// any, is repaired on the next open()).
  bool append(const SweepRecord& record, std::string* error);

  [[nodiscard]] bool contains(std::uint64_t config_hash) const {
    return completed_.count(config_hash) != 0;
  }
  [[nodiscard]] const std::unordered_set<std::uint64_t>& completed() const {
    return completed_;
  }
  [[nodiscard]] const std::vector<SweepRecord>& records() const {
    return records_;
  }
  /// Hashes that appeared on more than one loaded record line (a store
  /// the runner wrote never has any; hand-concatenated stores might).
  [[nodiscard]] std::size_t duplicate_hashes() const {
    return duplicate_hashes_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::unordered_set<std::uint64_t> completed_;
  std::vector<SweepRecord> records_;
  std::size_t duplicate_hashes_ = 0;
};

/// Serialisation of one record line (exposed for tests and tooling).
[[nodiscard]] Json sweep_record_to_json(const SweepRecord& record);
bool sweep_record_from_json(const Json& json, SweepRecord* out,
                            std::string* error);

}  // namespace lssim
