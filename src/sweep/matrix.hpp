// Sweep configuration generator (ROADMAP item 4).
//
// Production-scale measurement means thousands of configurations, not
// one hand-picked snapshot. SweepAxes describes the cross-product —
// protocols × directory organisations × interconnects × node counts ×
// cache/block geometries × workloads — and generate_sweep() expands it
// into a deterministic, validity-pruned, filtered list of SweepUnits.
//
// Every combination is checked through MachineConfig::validate() (the
// same validator the driver uses), so impossible machines — a full-map
// directory past 64 nodes, an L1 larger than its L2, a non-power-of-two
// set count — are pruned instead of erroring mid-sweep. Units are keyed
// by sweep_config_hash (trace/config_hash.hpp): the runner
// (sweep/runner.hpp) skips keys already present in the results store, so
// an interrupted sweep resumes without re-executing anything.
//
// Ordering contract: units come out workload-major, then protocol,
// directory, interconnect, node count, L1, L2, block size — and the
// order is what the runner appends in, so two generations from the same
// axes are byte-identical stores.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hpp"

namespace lssim {

/// One cell of the sweep matrix: a fully resolved machine + workload.
struct SweepUnit {
  /// Human-readable cell key, e.g.
  /// "pingpong/LS/full-map/network/n4/l1=4096/l2=65536/b16". Include and
  /// exclude filters match against this string.
  std::string label;
  std::string workload;
  /// Workload parameter overrides, sorted by key (part of the hash).
  std::vector<std::pair<std::string, std::string>> params;
  MachineConfig machine;
  std::uint64_t seed = 1;
  /// sweep_config_hash of the above — the results-store completion key.
  std::uint64_t config_hash = 0;
};

/// The cross-product description. Empty axis vectors are invalid (the
/// caller chooses at least one value per axis; the CLI defaults every
/// axis it doesn't set).
struct SweepAxes {
  std::vector<std::string> workloads;
  std::vector<ProtocolKind> protocols;
  std::vector<DirectoryKind> directories;
  std::vector<InterconnectKind> interconnects;
  std::vector<int> node_counts;
  std::vector<std::uint32_t> l1_sizes;
  std::vector<std::uint32_t> l2_sizes;
  /// Applied to both cache levels (the hierarchy is inclusive and the
  /// validator requires equal block sizes).
  std::vector<std::uint32_t> block_sizes;

  /// Template for fields the axes don't cover (latencies, directory
  /// knobs, bus arbitration, watchdog budget, ...).
  MachineConfig base;
  /// Workload parameter overrides applied to every unit (sorted into
  /// SweepUnit::params).
  std::vector<std::pair<std::string, std::string>> params;
  std::uint64_t seed = 1;

  /// Label filters: when `include` is non-empty a unit's label must
  /// contain at least one of the substrings; a label containing any
  /// `exclude` substring is dropped. Applied after validity pruning.
  std::vector<std::string> include;
  std::vector<std::string> exclude;
};

/// generate_sweep() output: the surviving units plus what was dropped,
/// so callers can report coverage honestly (a sweep that silently
/// pruned half its matrix reads as "covered everything" when it didn't).
struct SweepMatrix {
  std::vector<SweepUnit> units;
  std::size_t combinations = 0;    ///< Size of the raw cross-product.
  std::size_t pruned_invalid = 0;  ///< Dropped by MachineConfig::validate().
  std::size_t filtered_out = 0;    ///< Dropped by include/exclude filters.
};

/// Expands the cross-product. Returns false and sets `*error` on an
/// empty axis or an unknown workload name; pruning and filtering are
/// never errors.
bool generate_sweep(const SweepAxes& axes, SweepMatrix* out,
                    std::string* error);

}  // namespace lssim
