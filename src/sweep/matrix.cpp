#include "sweep/matrix.hpp"

#include <algorithm>

#include "driver/runner.hpp"
#include "trace/config_hash.hpp"

namespace lssim {
namespace {

std::string unit_label(const SweepUnit& unit) {
  const MachineConfig& m = unit.machine;
  std::string label = unit.workload;
  label += '/';
  label += protocol_name(m.protocol.kind);
  label += '/';
  label += directory_name(m.directory_scheme);
  label += '/';
  label += interconnect_name(m.interconnect);
  label += "/n" + std::to_string(m.num_nodes);
  label += "/l1=" + std::to_string(m.l1.size_bytes);
  label += "/l2=" + std::to_string(m.l2.size_bytes);
  label += "/b" + std::to_string(m.l1.block_bytes);
  return label;
}

bool label_selected(const std::string& label, const SweepAxes& axes) {
  if (!axes.include.empty()) {
    const bool hit = std::any_of(
        axes.include.begin(), axes.include.end(),
        [&label](const std::string& s) {
          return label.find(s) != std::string::npos;
        });
    if (!hit) return false;
  }
  return std::none_of(axes.exclude.begin(), axes.exclude.end(),
                      [&label](const std::string& s) {
                        return label.find(s) != std::string::npos;
                      });
}

}  // namespace

bool generate_sweep(const SweepAxes& axes, SweepMatrix* out,
                    std::string* error) {
  const auto fail = [error](std::string what) {
    if (error != nullptr) *error = std::move(what);
    return false;
  };
  if (axes.workloads.empty()) return fail("sweep axes: no workloads");
  if (axes.protocols.empty()) return fail("sweep axes: no protocols");
  if (axes.directories.empty()) return fail("sweep axes: no directories");
  if (axes.interconnects.empty()) {
    return fail("sweep axes: no interconnects");
  }
  if (axes.node_counts.empty()) return fail("sweep axes: no node counts");
  if (axes.l1_sizes.empty()) return fail("sweep axes: no L1 sizes");
  if (axes.l2_sizes.empty()) return fail("sweep axes: no L2 sizes");
  if (axes.block_sizes.empty()) return fail("sweep axes: no block sizes");
  for (const std::string& workload : axes.workloads) {
    if (!driver_knows_workload(workload)) {
      return fail("sweep axes: unknown workload '" + workload + "'");
    }
  }

  std::vector<std::pair<std::string, std::string>> params = axes.params;
  std::sort(params.begin(), params.end());

  SweepMatrix matrix;
  for (const std::string& workload : axes.workloads) {
    for (const ProtocolKind protocol : axes.protocols) {
      for (const DirectoryKind directory : axes.directories) {
        for (const InterconnectKind interconnect : axes.interconnects) {
          for (const int nodes : axes.node_counts) {
            for (const std::uint32_t l1 : axes.l1_sizes) {
              for (const std::uint32_t l2 : axes.l2_sizes) {
                for (const std::uint32_t block : axes.block_sizes) {
                  matrix.combinations += 1;
                  SweepUnit unit;
                  unit.workload = workload;
                  unit.params = params;
                  unit.seed = axes.seed;
                  unit.machine = axes.base;
                  unit.machine.protocol.kind = protocol;
                  unit.machine.directory_scheme = directory;
                  unit.machine.interconnect = interconnect;
                  unit.machine.num_nodes = nodes;
                  unit.machine.l1.size_bytes = l1;
                  unit.machine.l2.size_bytes = l2;
                  unit.machine.l1.block_bytes = block;
                  unit.machine.l2.block_bytes = block;
                  if (!unit.machine.validate().empty()) {
                    matrix.pruned_invalid += 1;
                    continue;
                  }
                  unit.label = unit_label(unit);
                  if (!label_selected(unit.label, axes)) {
                    matrix.filtered_out += 1;
                    continue;
                  }
                  unit.config_hash =
                      sweep_config_hash(unit.machine, unit.workload,
                                        unit.params, unit.seed);
                  matrix.units.push_back(std::move(unit));
                }
              }
            }
          }
        }
      }
    }
  }
  *out = std::move(matrix);
  return true;
}

}  // namespace lssim
