#include "check/invariants.hpp"

#include <sstream>

#include "cache/hierarchy.hpp"
#include "core/directory.hpp"

namespace lssim::check {
namespace {

std::string hex(Addr value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

/// The LS §3.1 tag model is exact only under the paper's default knobs:
/// immediate tag/de-tag (hysteresis depth 1) and no default tagging.
bool ls_model_applies(const MachineConfig& cfg) {
  return cfg.protocol.tag_hysteresis == 1 &&
         cfg.protocol.detag_hysteresis == 1 && !cfg.protocol.default_tagged;
}

}  // namespace

InvariantChecker::InvariantChecker(CheckerOptions options)
    : options_(options) {}

std::vector<std::string> InvariantChecker::messages() const {
  std::vector<std::string> out;
  out.reserve(violations_.size());
  for (const Violation& v : violations_) {
    out.push_back(v.message());
  }
  return out;
}

void InvariantChecker::record(std::string invariant, std::string detail) {
  ++total_violations_;
  if (violations_.size() < options_.max_violations) {
    violations_.push_back(
        Violation{std::move(invariant), std::move(detail), accesses_});
  }
}

std::uint64_t InvariantChecker::shadow_load(Addr addr, unsigned size) const {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < size; ++i) {
    const auto it = shadow_.find(addr + i);
    const std::uint64_t byte = it == shadow_.end() ? 0 : it->second;
    value |= byte << (8 * i);
  }
  return value;
}

void InvariantChecker::shadow_store(Addr addr, unsigned size,
                                    std::uint64_t value) {
  for (unsigned i = 0; i < size; ++i) {
    shadow_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void InvariantChecker::check_data_value(const AccessRequest& req,
                                        const AccessResult& result) {
  const std::uint64_t expected = shadow_load(req.addr, req.size);
  switch (req.op) {
    case MemOpKind::kRead:
      if (result.value != expected) {
        record("data-value",
               "read of " + hex(req.addr) + " returned " +
                   hex(result.value) + ", reference memory holds " +
                   hex(expected));
      }
      break;
    case MemOpKind::kWrite:
      shadow_store(req.addr, req.size, req.wdata);
      break;
    case MemOpKind::kSwap:
      if (result.value != expected) {
        record("data-value", "swap at " + hex(req.addr) +
                                 " returned old value " + hex(result.value) +
                                 ", reference memory holds " + hex(expected));
      }
      shadow_store(req.addr, req.size, req.wdata);
      break;
    case MemOpKind::kFetchAdd:
      if (result.value != expected) {
        record("data-value", "fetch-add at " + hex(req.addr) +
                                 " returned old value " + hex(result.value) +
                                 ", reference memory holds " + hex(expected));
      }
      shadow_store(req.addr, req.size, expected + req.wdata);
      break;
    case MemOpKind::kCas:
      if (result.value != expected) {
        record("data-value", "CAS at " + hex(req.addr) +
                                 " returned old value " + hex(result.value) +
                                 ", reference memory holds " + hex(expected));
      }
      if (expected == req.expected) {
        shadow_store(req.addr, req.size, req.wdata);
      }
      break;
  }
}

void InvariantChecker::verify_block(const MemorySystem& ms, Addr b,
                                    const DirEntry& e) {
  const MachineConfig& cfg = ms.config();
  const int nodes = cfg.num_nodes;
  const bool baseline = ms.policy().kind() == ProtocolKind::kBaseline;
  const std::uint8_t tag_hyst =
      cfg.protocol.tag_hysteresis == 0 ? 1 : cfg.protocol.tag_hysteresis;
  const std::uint8_t detag_hyst = cfg.protocol.detag_hysteresis == 0
                                      ? 1
                                      : cfg.protocol.detag_hysteresis;

  const DirectoryPolicy& dp = ms.directory_policy();
  {
    BlockSnapshot snap;
    snap.tagged = e.tagged;
    snap.last_reader = e.last_reader;
    int shared_copies = 0;
    int excl_copies = 0;
    int owned_copies = 0;

    for (int n = 0; n < nodes; ++n) {
      const NodeId nid = static_cast<NodeId>(n);
      const ProbeResult p = ms.cache(nid).probe(b);
      // Per-block inclusion: a valid L1 line needs a same-state L2 twin.
      if (const CacheLine* l1 = ms.cache(nid).l1().find(b)) {
        if (!p.l2_hit || l1->state != p.state) {
          record("dir-cache-agreement",
                 "node " + std::to_string(n) + " L1 holds " + hex(b) +
                     " " + to_string(l1->state) + " but L2 holds " +
                     (p.l2_hit ? to_string(p.state) : "nothing"));
        }
      }
      if (!p.l2_hit) {
        // A precise entry claims exact membership; an imprecise believed
        // set may cover caches that hold nothing.
        if (e.state == DirState::kShared && !e.imprecise &&
            dp.may_be_sharer(e, nid)) {
          record("dir-cache-agreement",
                 "directory lists node " + std::to_string(n) +
                     " as sharer of " + hex(b) + " but its cache misses");
        }
        if (e.state == DirState::kOwned && !e.imprecise &&
            (e.owner == nid || dp.may_be_sharer(e, nid))) {
          record("dir-cache-agreement",
                 "directory lists node " + std::to_string(n) +
                     " as owner/sharer of Owned " + hex(b) +
                     " but its cache misses");
        }
        continue;
      }
      switch (p.state) {
        case CacheState::kShared:
          ++shared_copies;
          snap.shared.set(nid);
          // Superset rule: a real holder the directory would not
          // invalidate is a missed invalidation, precise or not. Under
          // an Owned entry the sharer word tracks the non-owner copies.
          if ((e.state != DirState::kShared &&
               e.state != DirState::kOwned) ||
              !dp.may_be_sharer(e, nid)) {
            record("dir-cache-agreement",
                   "node " + std::to_string(n) + " holds " + hex(b) +
                       " Shared but directory is " +
                       std::string(to_string(e.state)) +
                       (dp.may_be_sharer(e, nid)
                            ? ""
                            : " and does not believe it is a sharer"));
          }
          break;
        case CacheState::kModified:
          ++excl_copies;
          snap.modified.set(nid);
          if ((e.state != DirState::kDirty && e.state != DirState::kExcl) ||
              e.owner != nid) {
            record("dir-cache-agreement",
                   "node " + std::to_string(n) + " holds " + hex(b) +
                       " Modified but directory is " +
                       std::string(to_string(e.state)) + " with owner " +
                       std::to_string(static_cast<int>(e.owner)));
          }
          break;
        case CacheState::kLStemp:
          ++excl_copies;
          snap.lstemp.set(nid);
          if (e.state != DirState::kExcl || e.owner != nid) {
            record("ls-tag",
                   "node " + std::to_string(n) + " holds " + hex(b) +
                       " in LStemp but directory is " +
                       std::string(to_string(e.state)) + " with owner " +
                       std::to_string(static_cast<int>(e.owner)));
          }
          if (baseline) {
            record("ls-tag", "Baseline protocol granted an LStemp copy of " +
                                 hex(b) + " to node " + std::to_string(n));
          }
          break;
        case CacheState::kOwned:
          ++owned_copies;
          snap.owned.set(nid);
          if (e.state != DirState::kOwned || e.owner != nid) {
            record("dir-cache-agreement",
                   "node " + std::to_string(n) + " holds " + hex(b) +
                       " Owned but directory is " +
                       std::string(to_string(e.state)) + " with owner " +
                       std::to_string(static_cast<int>(e.owner)));
          }
          break;
        case CacheState::kInvalid:
          break;
      }
    }

    if (excl_copies > 1 || (excl_copies == 1 && shared_copies > 0)) {
      record("swmr", "block " + hex(b) + " has " +
                         std::to_string(excl_copies) + " writable and " +
                         std::to_string(shared_copies) + " shared copies");
    }
    // Ownership relaxes SWMR to single-owner: at most one Owned copy,
    // never alongside a Modified/LStemp copy (shared copies are fine —
    // that is the point of the state).
    if (owned_copies > 1 || (owned_copies == 1 && excl_copies > 0)) {
      record("swmr", "block " + hex(b) + " has " +
                         std::to_string(owned_copies) + " Owned and " +
                         std::to_string(excl_copies) + " writable copies");
    }

    switch (e.state) {
      case DirState::kUncached:
        if (shared_copies + excl_copies + owned_copies != 0 ||
            e.sharers != 0 || e.owner != kInvalidNode) {
          record("dir-cache-agreement",
                 "Uncached block " + hex(b) + " still has copies (" +
                     std::to_string(shared_copies) + " shared, " +
                     std::to_string(excl_copies) + " writable) or stale "
                     "sharer/owner fields");
        }
        break;
      case DirState::kShared:
        // Precise entries agree exactly (and a Shared entry with no
        // copies is stale bookkeeping); imprecise ones may over-count
        // and outlive the last real copy — the per-node superset checks
        // above still catch missed invalidations.
        if ((!e.imprecise && (shared_copies != dp.believed_sharers(e).count() ||
                              shared_copies == 0)) ||
            excl_copies != 0 || owned_copies != 0 ||
            e.owner != kInvalidNode) {
          record("dir-cache-agreement",
                 "Shared block " + hex(b) + " believes " +
                     std::to_string(dp.believed_sharers(e).count()) +
                     " sharers but " + std::to_string(shared_copies) +
                     " shared / " + std::to_string(excl_copies) +
                     " writable cached copies exist (owner field " +
                     std::to_string(static_cast<int>(e.owner)) + ")");
        }
        break;
      case DirState::kDirty:
      case DirState::kExcl:
        if (e.owner == kInvalidNode || static_cast<int>(e.owner) >= nodes ||
            e.sharers != 0 || excl_copies != 1 || shared_copies != 0 ||
            owned_copies != 0) {
          record("dir-cache-agreement",
                 std::string(to_string(e.state)) + " block " + hex(b) +
                     " must have exactly one writable copy at its owner; "
                     "found " +
                     std::to_string(excl_copies) + " writable / " +
                     std::to_string(shared_copies) + " shared, owner " +
                     std::to_string(static_cast<int>(e.owner)));
        } else if (e.state == DirState::kDirty &&
                   !snap.modified.test(e.owner)) {
          record("dir-cache-agreement",
                 "Dirty block " + hex(b) + " owner " +
                     std::to_string(static_cast<int>(e.owner)) +
                     " does not hold a Modified copy");
        }
        break;
      case DirState::kOwned:
        // Exactly one Owned copy at the recorded owner; the sharer word
        // covers the non-owner shared copies (precisely, unless the
        // organisation lost precision).
        if (e.owner == kInvalidNode || static_cast<int>(e.owner) >= nodes ||
            owned_copies != 1 || excl_copies != 0 ||
            !snap.owned.test(e.owner) ||
            (!e.imprecise &&
             shared_copies != dp.believed_sharers(e).count())) {
          record("dir-cache-agreement",
                 "Owned block " + hex(b) + " must have its one Owned copy "
                     "at owner " +
                     std::to_string(static_cast<int>(e.owner)) + "; found " +
                     std::to_string(owned_copies) + " Owned / " +
                     std::to_string(excl_copies) + " writable / " +
                     std::to_string(shared_copies) + " shared copies (" +
                     std::to_string(dp.believed_sharers(e).count()) +
                     " believed sharers)");
        }
        break;
    }

    if (e.tagged && e.tag_progress != 0) {
      record("ls-tag", "tagged block " + hex(b) +
                           " kept a nonzero tag hysteresis counter");
    }
    if (!e.tagged && e.detag_progress != 0) {
      record("ls-tag", "untagged block " + hex(b) +
                           " kept a nonzero de-tag hysteresis counter");
    }
    if (e.tag_progress >= tag_hyst || e.detag_progress >= detag_hyst) {
      record("ls-tag", "block " + hex(b) +
                           " hysteresis counter passed its threshold "
                           "without firing");
    }
    if (baseline && e.tagged) {
      record("ls-tag",
             "Baseline protocol tagged block " + hex(b));
    }
    if (cfg.directory_scheme == DirectoryKind::kFullMap && e.imprecise) {
      record("dir-cache-agreement",
             "full-map directory marked " + hex(b) +
                 " imprecise (the full map is always exact)");
    }

    blocks_[b] = snap;
  }
}

void InvariantChecker::full_scan(const MemorySystem& ms) {
  ms.directory().for_each(
      [&](Addr b, const DirEntry& e) { verify_block(ms, b, e); });
  const int nodes = ms.config().num_nodes;
  for (int n = 0; n < nodes; ++n) {
    const NodeId nid = static_cast<NodeId>(n);
    if (!ms.cache(nid).check_inclusion()) {
      record("dir-cache-agreement",
             "node " + std::to_string(n) + " violates L1/L2 inclusion");
    }
    // Every cached block needs a live directory entry — the sparse
    // organisation must invalidate all copies before evicting one.
    ms.cache(nid).l2().for_each_valid([&](const CacheLine& line) {
      if (ms.directory().find(line.block) == nullptr) {
        record("dir-cache-agreement",
               "node " + std::to_string(n) + " caches " + hex(line.block) +
                   " but the block has no directory entry");
      }
    });
  }
  if (ms.directory_policy().max_entries() != 0) {
    // Snapshots of sparse-evicted blocks are history the machine lost
    // (tag bit included); drop them so a re-access starts cold.
    std::erase_if(blocks_, [&](const auto& kv) {
      return ms.directory().find(kv.first) == nullptr;
    });
  }
}

void InvariantChecker::final_check(const MemorySystem& ms) {
  full_scan(ms);
}

void InvariantChecker::check_structure(const MemorySystem& ms, NodeId node,
                                       Addr block, bool is_read,
                                       const BlockSnapshot& pre) {
  const ProtocolKind kind = ms.policy().kind();
  const bool sweep = options_.full_scan_interval != 0 &&
                     accesses_ % options_.full_scan_interval == 0;
  if (sweep) {
    full_scan(ms);
  } else {
    // Only blocks the transaction touched can have changed: the
    // accessed block plus the replacement victims the engine reported
    // through note_touched.
    touched_.push_back(block);
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      const Addr b = touched_[i];
      bool already_done = false;
      for (std::size_t j = 0; j < i; ++j) {
        already_done = already_done || touched_[j] == b;
      }
      if (already_done) {
        continue;
      }
      if (const DirEntry* e = ms.directory().find(b)) {
        verify_block(ms, b, *e);
      } else if (ms.directory_policy().max_entries() == 0) {
        // Unbounded organisations never drop entries.
        record("dir-cache-agreement",
               "touched block " + hex(b) + " has no directory entry");
      } else {
        // Sparse organisation: the entry was evicted. Legal only if the
        // eviction invalidated every cached copy; the block's history
        // (tag bit included) is gone, so the snapshot resets too.
        for (int n = 0; n < ms.config().num_nodes; ++n) {
          if (ms.cache(static_cast<NodeId>(n)).probe(b).l2_hit) {
            record("dir-cache-agreement",
                   "evicted directory entry for " + hex(b) +
                       " left a cached copy at node " + std::to_string(n));
          }
        }
        blocks_.erase(b);
      }
    }
  }
  touched_.clear();

  // Exclusive-grant legality (paper §3 rule): data-centric policies may
  // only grant an LStemp copy of a block that was tagged when the read
  // reached the home. (ILS grants from requester-side prediction, which
  // an external observer cannot reconstruct; Baseline is covered by the
  // never-grants check above.)
  if (is_read &&
      (kind == ProtocolKind::kLs || kind == ProtocolKind::kAd ||
       kind == ProtocolKind::kLsAd)) {
    const auto post = blocks_.find(block);
    const bool fresh_grant =
        post != blocks_.end() &&
        post->second.lstemp.test(node) && !pre.lstemp.test(node);
    if (fresh_grant && !pre.tagged) {
      record("ls-tag", "read by node " + std::to_string(node) +
                           " was granted an exclusive copy of " + hex(block) +
                           " although the block was not tagged");
    }
  }
}

void InvariantChecker::check_ls_tag_model(const MemorySystem& ms, NodeId node,
                                          const AccessRequest& req, Addr block,
                                          const BlockSnapshot& pre) {
  const MachineConfig& cfg = ms.config();
  if (ms.policy().kind() != ProtocolKind::kLs || !ls_model_applies(cfg)) {
    return;
  }
  const auto post_it = blocks_.find(block);
  if (post_it == blocks_.end()) {
    return;  // Local-only access to a block the directory never saw.
  }
  const bool post_tagged = post_it->second.tagged;
  const bool had_copy = pre.shared.test(node) || pre.modified.test(node) ||
                        pre.lstemp.test(node);
  const bool writable_copy = pre.modified.test(node) || pre.lstemp.test(node);
  SharerSet foreign = pre.lstemp;
  foreign.reset(node);
  const bool foreign_lstemp = !foreign.empty();

  bool expected = pre.tagged;
  if (!req.is_write()) {
    if (!had_copy && foreign_lstemp) {
      expected = false;  // §3.1 case 2: foreign read de-tags via NotLS.
    }
  } else if (!writable_copy) {
    // Global write action: §3.1 tag/de-tag rules on the pre-state.
    const bool upgrade = pre.shared.test(node);
    bool lone_write_detag = false;
    if (pre.last_reader == node) {
      expected = true;  // Ownership request from the last reader: tag.
    } else if (!upgrade && !cfg.protocol.keep_tag_on_lone_write) {
      expected = false;  // Lone write: de-tag.
      lone_write_detag = true;
    }
    if (!upgrade && foreign_lstemp && !lone_write_detag) {
      expected = false;  // §3.1 case 2, foreign write flavour.
    }
  }
  if (post_tagged != expected) {
    record("ls-tag",
           "LS tag model disagrees on " + hex(block) + " after " +
               std::string(req.is_write() ? "write" : "read") + " by node " +
               std::to_string(node) + ": engine has " +
               (post_tagged ? "tagged" : "untagged") + ", §3.1 rules say " +
               (expected ? "tagged" : "untagged"));
  }
}

void InvariantChecker::on_access(const MemorySystem& ms, NodeId node,
                                 const AccessRequest& req,
                                 const AccessResult& result, Cycles now) {
  (void)now;
  ++accesses_;
  check_data_value(req, result);

  const Addr block =
      req.addr & ~static_cast<Addr>(ms.config().l2.block_bytes - 1);
  BlockSnapshot pre;
  const auto it = blocks_.find(block);
  if (it != blocks_.end()) {
    pre = it->second;
  } else {
    // First global touch: a fresh entry starts tagged only under the
    // §5.5 default-tagged variation (and only for policies that allow
    // it — the directory applies the same composite rule).
    pre.tagged = ms.config().protocol.default_tagged &&
                 ms.policy().supports_default_tagged();
  }

  check_structure(ms, node, block, !req.is_write(), pre);
  check_ls_tag_model(ms, node, req, block, pre);
}

}  // namespace lssim::check
