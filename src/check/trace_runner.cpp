#include "check/trace_runner.hpp"

#include <utility>

#include "mem/address_space.hpp"
#include "stats/stats.hpp"

namespace lssim::check {

TraceRunResult run_trace(const ReproTrace& trace, const PolicyFactory& policy,
                         const CheckerOptions& options) {
  const MachineConfig& cfg = trace.machine;
  AddressSpace space(cfg.num_nodes, cfg.page_bytes);
  Stats stats(cfg.num_nodes);
  MemorySystem ms(cfg, space, stats, /*telemetry=*/nullptr,
                  policy ? policy(cfg) : nullptr);
  InvariantChecker checker(options);
  ms.attach_checker(&checker);

  Cycles now = 0;
  for (const ReproAccess& access : trace.accesses) {
    AccessRequest req;
    req.op = access.op;
    req.addr = access.addr;
    req.size = access.size;
    req.wdata = access.wdata;
    req.expected = access.expected;
    ms.access(access.node, req, now);
    // Accesses are spaced far enough apart that link occupancy from one
    // transaction never contends with the next: latencies stay
    // deterministic regardless of trace length.
    now += 1000;
  }

  TraceRunResult result;
  result.accesses = checker.accesses_checked();
  result.total_violations = checker.violation_count();
  result.violations = checker.violations();
  return result;
}

MachineConfig tiny_machine(int nodes, ProtocolKind kind) {
  MachineConfig cfg;
  cfg.num_nodes = nodes;
  cfg.protocol.kind = kind;
  cfg.l1 = CacheConfig{32, 1, 16};
  cfg.l2 = CacheConfig{64, 1, 16};
  return cfg;
}

Addr verification_block(const MachineConfig& machine, int index) {
  // One L2 "way span" apart: on the tiny 64 B direct-mapped L2 blocks 0
  // and 1 land in the same set, so a two-block trace already exercises
  // replacement and writeback paths.
  const Addr stride = machine.l2.size_bytes / machine.l2.assoc;
  return static_cast<Addr>(index) * stride;
}

}  // namespace lssim::check
