#include "check/fuzzer.hpp"

#include <algorithm>
#include <utility>

#include "core/protocol_registry.hpp"
#include "exec/heartbeat.hpp"
#include "sim/rng.hpp"

namespace lssim::check {
namespace {

/// LS with the §3.1 foreign-access de-tag rule "forgotten": a block
/// stays tagged after a foreign read hits its LStemp owner, so later
/// reads keep being granted exclusive copies of a block that is
/// demonstrably not in a load-store sequence any more. The invariant
/// checker's LS tag model flags the first such access.
class SkipDetagLsPolicy final : public CoherencePolicy {
 public:
  explicit SkipDetagLsPolicy(const ProtocolConfig& config)
      : keep_tag_on_lone_write_(config.keep_tag_on_lone_write) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLs;
  }

  WriteTagDecision on_global_write(const DirEntry& entry, NodeId writer,
                                   bool upgrade) override {
    if (entry.last_reader == writer) {
      return {TagAction::kTag, false, TagReason::kLsSequence};
    }
    if (!upgrade && !keep_tag_on_lone_write_) {
      return {TagAction::kDetag, true, TagReason::kLoneWrite};
    }
    return {};
  }

  [[nodiscard]] TagAction on_foreign_access(
      const DirEntry& entry) const override {
    (void)entry;
    return TagAction::kNone;  // The injected bug.
  }

 private:
  bool keep_tag_on_lone_write_;
};

ReproTrace random_trace(Rng& rng, const FuzzOptions& options,
                        const std::vector<ProtocolKind>& kinds) {
  ReproTrace trace;
  const ProtocolKind kind = kinds[rng.next_below(kinds.size())];
  const int nodes = static_cast<int>(rng.next_range(2, 4));
  trace.machine = tiny_machine(nodes, kind);

  if (options.randomize_knobs) {
    ProtocolConfig& p = trace.machine.protocol;
    p.default_tagged = rng.next_bool(0.25);
    p.tag_hysteresis = rng.next_bool(0.25) ? 2 : 1;
    p.detag_hysteresis = rng.next_bool(0.25) ? 2 : 1;
    p.keep_tag_on_lone_write = rng.next_bool(0.25);
    p.ad_detag_on_replacement = !rng.next_bool(0.25);
    // Sample a directory organisation: full-map half the time, an
    // alternative otherwise — tight knobs (1-2 pointers, 2-node regions,
    // 1-3 entries) so overflow, imprecision and evictions all happen
    // within a short trace.
    const std::uint64_t dir_roll = rng.next_below(8);
    if (dir_roll < 2) {
      trace.machine.directory_scheme = DirectoryKind::kLimitedPtr;
      trace.machine.directory_pointers =
          static_cast<std::uint8_t>(rng.next_range(1, 2));
    } else if (dir_roll < 3) {
      trace.machine.directory_scheme = DirectoryKind::kCoarseVector;
      trace.machine.directory_region =
          static_cast<std::uint16_t>(rng.next_range(1, 2));
    } else if (dir_roll < 4) {
      trace.machine.directory_scheme = DirectoryKind::kSparse;
      trace.machine.directory_entries =
          static_cast<std::uint32_t>(rng.next_range(1, 3));
    }
    // Sample the transport too: the snooping bus serialises the same
    // transactions through an arbiter, so every structural invariant
    // must hold identically there. Timing differs but the checker's
    // models are timing-independent.
    const std::uint64_t net_roll = rng.next_below(8);
    if (net_roll < 2) {
      trace.machine.interconnect = InterconnectKind::kBus;
      trace.machine.bus_arbitration = (net_roll == 0)
                                          ? BusArbitration::kFcfs
                                          : BusArbitration::kRoundRobin;
    }
  }

  const int num_blocks = static_cast<int>(rng.next_range(1, 4));
  for (int i = 0; i < options.trace_length; ++i) {
    ReproAccess access;
    access.node = static_cast<NodeId>(rng.next_below(nodes));
    const Addr block = verification_block(
        trace.machine, static_cast<int>(rng.next_below(num_blocks)));
    access.addr = block + rng.next_below(2) * 8;
    access.size = 8;
    access.wdata = rng.next();
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 45) {
      access.op = MemOpKind::kRead;
    } else if (roll < 80) {
      access.op = MemOpKind::kWrite;
    } else if (roll < 87) {
      access.op = MemOpKind::kSwap;
    } else if (roll < 94) {
      access.op = MemOpKind::kFetchAdd;
    } else {
      access.op = MemOpKind::kCas;
      access.expected = rng.next_bool(0.5) ? 0 : rng.next();
    }
    trace.accesses.push_back(access);
  }
  return trace;
}

}  // namespace

PolicyFactory skip_detag_policy_factory() {
  return [](const MachineConfig& config) -> std::unique_ptr<CoherencePolicy> {
    return std::make_unique<SkipDetagLsPolicy>(config.protocol);
  };
}

ReproTrace shrink_repro(const ReproTrace& trace, const PolicyFactory& policy,
                        const CheckerOptions& options) {
  const auto fails = [&](const std::vector<ReproAccess>& accesses) {
    ReproTrace candidate;
    candidate.machine = trace.machine;
    candidate.accesses = accesses;
    return !run_trace(candidate, policy, options).ok();
  };

  std::vector<ReproAccess> current = trace.accesses;
  if (current.empty() || !fails(current)) {
    return trace;
  }

  // ddmin (Zeller/Hildebrandt): try dropping ever-finer chunks until no
  // single access can be removed.
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t chunk =
        (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < current.size(); start += chunk) {
      std::vector<ReproAccess> candidate;
      candidate.reserve(current.size());
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + static_cast<std::ptrdiff_t>(start));
      const std::size_t stop = std::min(start + chunk, current.size());
      candidate.insert(candidate.end(),
                       current.begin() + static_cast<std::ptrdiff_t>(stop),
                       current.end());
      if (!candidate.empty() && fails(candidate)) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) {
        break;  // 1-minimal.
      }
      granularity = std::min(current.size(), granularity * 2);
    }
  }

  ReproTrace shrunk;
  shrunk.machine = trace.machine;
  shrunk.accesses = std::move(current);
  return shrunk;
}

FuzzResult run_fuzzer(const FuzzOptions& options, const PolicyFactory& policy) {
  FuzzResult result;
  std::vector<ProtocolKind> kinds = options.protocols;
  if (kinds.empty()) {
    kinds = all_protocol_kinds();
  }

  Rng rng(options.seed);
  for (int i = 0; i < options.iterations; ++i) {
    ReproTrace trace;
    {
      const PhaseTimer timer(options.heartbeat, "generate");
      trace = random_trace(rng, options, kinds);
    }
    result.traces += 1;
    // Protocols to check this stimulus under: the sampled one, or — with
    // compare_protocols — the whole registry, replaying the same
    // generated access stream per kind (capture once, replay many: the
    // stream is protocol-independent by construction, so one generation
    // feeds the full sweep).
    std::vector<ProtocolKind> sweep{trace.machine.protocol.kind};
    if (options.compare_protocols) {
      sweep = kinds;
    }
    bool failed = false;
    std::uint64_t trace_accesses = 0;
    for (ProtocolKind kind : sweep) {
      trace.machine.protocol.kind = kind;
      TraceRunResult run;
      {
        const PhaseTimer timer(options.heartbeat, "check");
        run = run_trace(trace, policy, options.checker);
      }
      result.replays += 1;
      result.accesses += run.accesses;
      trace_accesses += run.accesses;
      if (run.ok()) {
        continue;
      }
      failed = true;
      if (result.failures.size() < options.max_failures) {
        const PhaseTimer timer(options.heartbeat, "shrink");
        ReproTrace repro = trace;
        if (!run.violations.empty()) {
          // Everything after the first violating access is noise.
          repro.accesses.resize(
              static_cast<std::size_t>(run.violations.front().access_index));
        }
        if (options.shrink) {
          repro = shrink_repro(repro, policy, options.checker);
        }
        const TraceRunResult rerun =
            run_trace(repro, policy, options.checker);
        result.messages.push_back(rerun.violations.empty()
                                      ? run.violations.front().message()
                                      : rerun.violations.front().message());
        result.failures.push_back(std::move(repro));
      }
    }
    if (options.heartbeat != nullptr) {
      options.heartbeat->unit_done(trace_accesses);
    }
    if (failed) {
      result.failing_traces += 1;
    }
  }
  return result;
}

}  // namespace lssim::check
