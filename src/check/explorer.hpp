// Exhaustive state-space explorer for tiny configurations.
//
// Model-checking practice for coherence protocols (Murphi-style) is that
// bugs reachable at all are reachable on very small machines: 2-4 nodes,
// 1-2 blocks, a handful of accesses. The explorer enumerates *every*
// interleaved access sequence of bounded depth over such a config —
// sequence = depth choices of (node, block, read/write) — replaying each
// from a cold machine with the invariant checker attached, which
// cross-checks against its own sequentially-consistent reference memory.
// Depth d with n nodes, b blocks explores (2*n*b)^d sequences; the
// defaults (2 nodes, 2 blocks, depth 4) are 4096 sequences and run in
// well under a second per protocol.
#pragma once

#include <vector>

#include "check/trace_runner.hpp"

namespace lssim::check {

struct ExplorerOptions {
  /// Machine shape shared by all sequences; protocol kind comes from
  /// `protocols`. Tiny caches on purpose — see trace_runner.hpp.
  MachineConfig machine = tiny_machine(2);
  /// Protocol kinds to cross-check. Empty = all registered protocols.
  std::vector<ProtocolKind> protocols;
  /// Distinct blocks a sequence may touch (same-L2-set addresses).
  int num_blocks = 2;
  /// Accesses per sequence.
  int depth = 4;
  /// Failing sequences kept as repro traces (counting continues).
  std::size_t max_failures = 4;
  /// Tiny configs afford the strictest mode: full sweep every access.
  CheckerOptions checker{.full_scan_interval = 1};
};

struct ExplorerResult {
  std::uint64_t sequences = 0;
  std::uint64_t accesses = 0;
  std::uint64_t failing_sequences = 0;
  /// One repro per failing sequence, capped at max_failures; the trace
  /// is truncated right after the first violating access.
  std::vector<ReproTrace> failures;
  /// First violation message per retained failure (parallel array).
  std::vector<std::string> messages;

  [[nodiscard]] bool ok() const noexcept { return failing_sequences == 0; }
};

/// Enumerates and checks all sequences; `policy` (optional) injects a
/// policy override for fault-injection tests.
[[nodiscard]] ExplorerResult run_explorer(const ExplorerOptions& options,
                                          const PolicyFactory& policy = {});

}  // namespace lssim::check
