#include "check/repro.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/protocol_registry.hpp"

namespace lssim::check {
namespace {

constexpr const char* kHeader = "lssim-repro v1";

[[noreturn]] void parse_fail(int line, const std::string& what) {
  throw std::runtime_error("repro parse error at line " +
                           std::to_string(line) + ": " + what);
}

bool parse_op(const std::string& text, MemOpKind* out) {
  if (text == "R") {
    *out = MemOpKind::kRead;
  } else if (text == "W") {
    *out = MemOpKind::kWrite;
  } else if (text == "SWAP") {
    *out = MemOpKind::kSwap;
  } else if (text == "FADD") {
    *out = MemOpKind::kFetchAdd;
  } else if (text == "CAS") {
    *out = MemOpKind::kCas;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* op_name(MemOpKind op) noexcept {
  switch (op) {
    case MemOpKind::kRead: return "R";
    case MemOpKind::kWrite: return "W";
    case MemOpKind::kSwap: return "SWAP";
    case MemOpKind::kFetchAdd: return "FADD";
    case MemOpKind::kCas: return "CAS";
  }
  return "?";
}

std::string to_string(const ReproAccess& access) {
  std::ostringstream os;
  os << "access " << static_cast<int>(access.node) << ' '
     << op_name(access.op) << " 0x" << std::hex << access.addr << std::dec
     << ' ' << static_cast<int>(access.size) << " 0x" << std::hex
     << access.wdata;
  if (access.op == MemOpKind::kCas) {
    os << " 0x" << access.expected;
  }
  return os.str();
}

void save_repro(std::ostream& os, const ReproTrace& trace) {
  const MachineConfig& m = trace.machine;
  os << kHeader << "\n";
  os << "protocol " << protocol_name(m.protocol.kind) << "\n";
  os << "nodes " << m.num_nodes << "\n";
  os << "l1 " << m.l1.size_bytes << ' ' << m.l1.assoc << ' '
     << m.l1.block_bytes << "\n";
  os << "l2 " << m.l2.size_bytes << ' ' << m.l2.assoc << ' '
     << m.l2.block_bytes << "\n";
  os << "default_tagged " << (m.protocol.default_tagged ? 1 : 0) << "\n";
  os << "tag_hysteresis " << static_cast<int>(m.protocol.tag_hysteresis)
     << "\n";
  os << "detag_hysteresis " << static_cast<int>(m.protocol.detag_hysteresis)
     << "\n";
  os << "keep_tag_on_lone_write "
     << (m.protocol.keep_tag_on_lone_write ? 1 : 0) << "\n";
  os << "ad_detag_on_replacement "
     << (m.protocol.ad_detag_on_replacement ? 1 : 0) << "\n";
  os << "directory " << directory_name(m.directory_scheme) << ' '
     << static_cast<int>(m.directory_pointers) << ' ' << m.directory_region
     << ' ' << m.directory_entries << "\n";
  os << "interconnect " << interconnect_name(m.interconnect) << ' '
     << to_string(m.bus_arbitration) << "\n";
  for (const ReproAccess& access : trace.accesses) {
    os << to_string(access) << "\n";
  }
  os << "end\n";
}

ReproTrace load_repro(std::istream& is) {
  ReproTrace trace;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  bool saw_end = false;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip trailing CR (repros may be edited on any platform).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != kHeader) {
        parse_fail(line_no, "expected header '" + std::string(kHeader) +
                                "', got '" + line + "'");
      }
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "protocol") {
      std::string name;
      ls >> name;
      const ProtocolInfo* info = find_protocol(name);
      if (info == nullptr) parse_fail(line_no, "unknown protocol " + name);
      trace.machine.protocol.kind = info->kind;
    } else if (key == "nodes") {
      int n = 0;
      ls >> n;
      if (!ls || n < 1 || n > kMaxNodes) parse_fail(line_no, "bad nodes");
      trace.machine.num_nodes = n;
    } else if (key == "l1" || key == "l2") {
      CacheConfig cache;
      ls >> cache.size_bytes >> cache.assoc >> cache.block_bytes;
      if (!ls) parse_fail(line_no, "bad cache geometry");
      (key == "l1" ? trace.machine.l1 : trace.machine.l2) = cache;
    } else if (key == "default_tagged") {
      int v = 0;
      ls >> v;
      trace.machine.protocol.default_tagged = v != 0;
    } else if (key == "tag_hysteresis") {
      int v = 1;
      ls >> v;
      trace.machine.protocol.tag_hysteresis = static_cast<std::uint8_t>(v);
    } else if (key == "detag_hysteresis") {
      int v = 1;
      ls >> v;
      trace.machine.protocol.detag_hysteresis = static_cast<std::uint8_t>(v);
    } else if (key == "keep_tag_on_lone_write") {
      int v = 0;
      ls >> v;
      trace.machine.protocol.keep_tag_on_lone_write = v != 0;
    } else if (key == "ad_detag_on_replacement") {
      int v = 1;
      ls >> v;
      trace.machine.protocol.ad_detag_on_replacement = v != 0;
    } else if (key == "directory") {
      // "directory <name> <pointers> [<region> <entries>]" — the two
      // trailing knobs are optional so pre-existing repros still load.
      std::string scheme;
      int pointers = 4;
      ls >> scheme >> pointers;
      DirectoryKind kind;
      if (!directory_from_name(scheme, &kind)) {
        parse_fail(line_no, "unknown directory organisation " + scheme);
      }
      trace.machine.directory_scheme = kind;
      trace.machine.directory_pointers = static_cast<std::uint8_t>(pointers);
      unsigned region = 0;
      unsigned entries = 0;
      if (ls >> region >> entries) {
        trace.machine.directory_region = static_cast<std::uint16_t>(region);
        trace.machine.directory_entries = entries;
      }
    } else if (key == "interconnect") {
      // "interconnect <name> [<arbitration>]" — optional as a whole so
      // pre-seam repros still load (they default to the directory
      // network, the only transport that existed when they were saved).
      std::string name;
      ls >> name;
      InterconnectKind net;
      if (!interconnect_from_name(name, &net)) {
        parse_fail(line_no, "unknown interconnect " + name);
      }
      trace.machine.interconnect = net;
      std::string arb;
      if (ls >> arb) {
        BusArbitration a;
        if (!bus_arbitration_from_name(arb, &a)) {
          parse_fail(line_no, "unknown bus arbitration " + arb);
        }
        trace.machine.bus_arbitration = a;
      }
    } else if (key == "access") {
      ReproAccess access;
      int node = 0;
      std::string op;
      int size = 0;
      ls >> node >> op >> std::hex >> access.addr >> std::dec >> size >>
          std::hex >> access.wdata;
      if (!ls) parse_fail(line_no, "malformed access");
      if (!parse_op(op, &access.op)) parse_fail(line_no, "unknown op " + op);
      if (access.op == MemOpKind::kCas) {
        ls >> access.expected;
        if (!ls) parse_fail(line_no, "CAS access missing expected value");
      }
      if (node < 0 || node >= kMaxNodes) parse_fail(line_no, "bad node");
      if (size != 1 && size != 2 && size != 4 && size != 8) {
        parse_fail(line_no, "bad size");
      }
      access.node = static_cast<NodeId>(node);
      access.size = static_cast<std::uint8_t>(size);
      trace.accesses.push_back(access);
    } else {
      parse_fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_header) parse_fail(line_no, "missing header");
  if (!saw_end) parse_fail(line_no, "missing 'end' terminator");
  return trace;
}

void save_repro_file(const std::string& path, const ReproTrace& trace) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  save_repro(os, trace);
  os.flush();
  if (!os) {
    throw std::runtime_error("failed writing repro to " + path);
  }
}

ReproTrace load_repro_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open repro file " + path);
  }
  return load_repro(is);
}

}  // namespace lssim::check
