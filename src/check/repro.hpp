// Replayable repro traces for the coherence verification subsystem.
//
// A ReproTrace is a short, explicit access sequence plus the machine
// shape it must run under: exactly what the exhaustive explorer and the
// fuzzer (src/check/fuzzer.hpp) hand back when an invariant breaks, and
// what the shrinker minimises. The text format is deliberately
// human-editable — a shrunk repro is a bug report first and a regression
// test second (tests/check/repros/*.repro) — and versioned so old repros
// keep replaying as the format grows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace lssim::check {

/// One access of a repro trace. Mirrors AccessRequest minus the fields
/// that do not affect protocol state (stream tag, access site).
struct ReproAccess {
  NodeId node = 0;
  MemOpKind op = MemOpKind::kRead;
  Addr addr = 0;
  std::uint8_t size = 8;
  std::uint64_t wdata = 0;
  std::uint64_t expected = 0;  ///< CAS expected value.

  [[nodiscard]] bool operator==(const ReproAccess&) const = default;
};

/// A minimal replayable scenario: machine shape + access sequence. The
/// embedded MachineConfig carries everything protocol-relevant (node
/// count, cache geometry, protocol knobs, directory scheme); fields the
/// checker does not exercise (latencies, telemetry) stay at defaults.
struct ReproTrace {
  MachineConfig machine;
  std::vector<ReproAccess> accesses;
};

/// Mnemonic used in the text format ("R", "W", "SWAP", "FADD", "CAS").
[[nodiscard]] const char* op_name(MemOpKind op) noexcept;

/// Writes the versioned text format:
///
///   lssim-repro v1
///   protocol LS
///   nodes 4
///   l1 32 1 16
///   l2 64 1 16
///   default_tagged 0
///   tag_hysteresis 1
///   detag_hysteresis 1
///   keep_tag_on_lone_write 0
///   ad_detag_on_replacement 1
///   directory full-map 4
///   access 0 R 0x0 8 0x0
///   access 1 W 0x40 8 0xdead
///   end
void save_repro(std::ostream& os, const ReproTrace& trace);

/// Parses the text format; throws std::runtime_error with a line number
/// on malformed input or an unsupported version.
[[nodiscard]] ReproTrace load_repro(std::istream& is);

/// Convenience wrappers over save/load. load_repro_file throws
/// std::runtime_error when the file cannot be opened.
void save_repro_file(const std::string& path, const ReproTrace& trace);
[[nodiscard]] ReproTrace load_repro_file(const std::string& path);

/// One access as a text-format line (diagnostics, failure messages).
[[nodiscard]] std::string to_string(const ReproAccess& access);

}  // namespace lssim::check
