// Protocol invariant checker: redundant, independent verification of the
// transaction engine after every access.
//
// The paper's claim is that LS/LS+AD are *behaviour-preserving*
// extensions of the baseline write-invalidate protocol. Bit-identical
// figure outputs only establish that for states the benchmarks reach;
// this checker states the property directly and checks it on every
// transaction of any run:
//
//   * SWMR — at most one writable (Modified/LStemp) copy exists, and
//     never alongside Shared copies.
//   * Data-value — every read (and every RMW's old value) equals the
//     value produced by a sequentially-consistent reference memory the
//     checker maintains itself, independent of the engine's
//     AddressSpace.
//   * Directory/cache agreement — owner fields and per-state copy
//     counts match the actual cache contents, and the two-level
//     hierarchy keeps inclusion. Sharer sets are checked through the
//     machine's directory organisation: a *precise* entry must agree
//     exactly, an *imprecise* one (Dir_iB pointer overflow, coarse
//     regions) must believe a superset of the real holders — a real
//     holder the directory would not invalidate is always a violation,
//     under every organisation.
//   * LS-tag consistency — hysteresis counters stay in bounds, Baseline
//     never tags or grants exclusive reads, data-centric policies only
//     grant LStemp copies of blocks that were tagged at request time,
//     and (for the LS protocol under the paper's default knobs) the tag
//     bit tracks an independent model of the §3.1 tag/de-tag rules —
//     which is how a policy that "forgets" a de-tag rule is caught.
//
// The checker attaches to a MemorySystem through the same null-gated
// hook pattern as telemetry: a disabled run pays one pointer compare per
// access and is bit-identical to an unchecked run. An enabled run pays a
// full directory × cache scan per access — meant for tiny verification
// configs (src/check/explorer.hpp, fuzzer.hpp) and opt-in driver runs
// (--check-invariants), not for the headline figures.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/protocol.hpp"
#include "core/sharer_set.hpp"
#include "sim/types.hpp"

namespace lssim::check {

/// One invariant violation, with enough context to debug it.
struct Violation {
  std::string invariant;  ///< e.g. "swmr", "data-value", "ls-tag".
  std::string detail;
  std::uint64_t access_index = 0;  ///< 1-based index of the access.

  [[nodiscard]] std::string message() const {
    return "[" + invariant + "] after access #" +
           std::to_string(access_index) + ": " + detail;
  }
};

struct CheckerOptions {
  /// Violations kept verbatim; further ones only bump the counter.
  std::size_t max_violations = 16;
  /// Model the LS protocol's §3.1 tag rules independently (only applies
  /// when the active policy is LS with hysteresis depth 1 and
  /// default_tagged off — the model mirrors the paper's default rules).
  bool model_ls_tags = true;
  /// Every access verifies the blocks the transaction touched (accessed
  /// block + replacement victims); every `full_scan_interval`-th access
  /// additionally sweeps the whole directory and every cache. 1 sweeps
  /// on every access (what the tiny explorer/fuzzer configs use); 0
  /// never sweeps periodically (the final_check still does). Touched-
  /// block checking is inductively complete — untouched blocks cannot
  /// change state — as long as the engine reports every victim; the
  /// periodic sweep is the belt-and-braces backstop for that assumption.
  std::uint64_t full_scan_interval = 1024;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(CheckerOptions options = {});

  /// Engine hook: called by MemorySystem::access after the transaction
  /// (state transitions and data application included) completes.
  void on_access(const MemorySystem& ms, NodeId node,
                 const AccessRequest& req, const AccessResult& result,
                 Cycles now);

  /// Engine hook: an L2 victim's directory entry was updated as part of
  /// the in-flight transaction; the block joins the set verified by the
  /// enclosing on_access.
  void note_touched(Addr block) { touched_.push_back(block); }

  /// Full directory × cache sweep; call at end of run (System does).
  void final_check(const MemorySystem& ms);

  [[nodiscard]] bool ok() const noexcept { return total_violations_ == 0; }
  /// Total violations observed (may exceed violations().size()).
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return total_violations_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t accesses_checked() const noexcept {
    return accesses_;
  }
  /// Formatted messages of the retained violations.
  [[nodiscard]] std::vector<std::string> messages() const;

 private:
  /// Post-access snapshot of one block: the directory fields the tag
  /// model consumes plus per-node cache states as sets. The snapshot
  /// taken after access N is the ground-truth *pre*-state of access N+1.
  struct BlockSnapshot {
    bool tagged = false;
    NodeId last_reader = kInvalidNode;
    SharerSet shared;
    SharerSet modified;
    SharerSet lstemp;
    SharerSet owned;
  };

  void record(std::string invariant, std::string detail);

  void check_data_value(const AccessRequest& req, const AccessResult& result);
  /// Verifies one block's SWMR / directory-cache agreement / hysteresis
  /// / per-block L1-L2 inclusion and rebuilds its snapshot.
  void verify_block(const MemorySystem& ms, Addr block, const DirEntry& e);
  /// Incremental structure check: verifies the accessed block, every
  /// note_touched() victim, and (every full_scan_interval accesses) the
  /// whole directory; then checks exclusive-grant legality against `pre`
  /// (the accessed block's snapshot before this access).
  void check_structure(const MemorySystem& ms, NodeId node, Addr block,
                       bool is_read, const BlockSnapshot& pre);
  void full_scan(const MemorySystem& ms);
  void check_ls_tag_model(const MemorySystem& ms, NodeId node,
                          const AccessRequest& req, Addr block,
                          const BlockSnapshot& pre);

  [[nodiscard]] std::uint64_t shadow_load(Addr addr, unsigned size) const;
  void shadow_store(Addr addr, unsigned size, std::uint64_t value);

  CheckerOptions options_;
  std::uint64_t accesses_ = 0;
  std::uint64_t total_violations_ = 0;
  std::vector<Violation> violations_;
  /// Reference memory, byte-granular. Bytes never stored read as zero,
  /// matching AddressSpace's lazily-zeroed pages.
  std::unordered_map<Addr, std::uint8_t> shadow_;
  /// Post-access block snapshots (pre-state for the next access).
  std::unordered_map<Addr, BlockSnapshot> blocks_;
  /// Victim blocks reported for the in-flight access; drained by
  /// on_access.
  std::vector<Addr> touched_;
};

}  // namespace lssim::check
