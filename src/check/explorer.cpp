#include "check/explorer.hpp"

#include <cstdint>

#include "core/protocol_registry.hpp"

namespace lssim::check {
namespace {

/// Decodes sequence step `digit` (one base-`choices` digit) into an
/// access. Choice layout: op is the low bit, then block, then node —
/// adjacent sequence numbers differ in the last access first, so the
/// enumeration walks "similar" schedules consecutively.
ReproAccess decode_choice(const MachineConfig& machine, int num_blocks,
                          int digit, int step) {
  const bool is_write = (digit & 1) != 0;
  const int block = (digit >> 1) % num_blocks;
  const int node = (digit >> 1) / num_blocks;

  ReproAccess access;
  access.node = static_cast<NodeId>(node);
  access.op = is_write ? MemOpKind::kWrite : MemOpKind::kRead;
  access.addr = verification_block(machine, block);
  access.size = 8;
  // Unique store values per step so the data-value invariant can tell
  // any two writes of a sequence apart.
  access.wdata = 0x100u * static_cast<std::uint64_t>(step + 1) +
                 static_cast<std::uint64_t>(node + 1);
  return access;
}

}  // namespace

ExplorerResult run_explorer(const ExplorerOptions& options,
                            const PolicyFactory& policy) {
  ExplorerResult result;
  std::vector<ProtocolKind> kinds = options.protocols;
  if (kinds.empty()) {
    kinds = all_protocol_kinds();
  }

  const int choices = 2 * options.machine.num_nodes * options.num_blocks;
  std::uint64_t total = 1;
  for (int i = 0; i < options.depth; ++i) {
    total *= static_cast<std::uint64_t>(choices);
  }

  for (ProtocolKind kind : kinds) {
    ReproTrace trace;
    trace.machine = options.machine;
    trace.machine.protocol.kind = kind;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
      trace.accesses.clear();
      std::uint64_t rest = seq;
      for (int step = 0; step < options.depth; ++step) {
        const int digit = static_cast<int>(rest % choices);
        rest /= choices;
        trace.accesses.push_back(
            decode_choice(trace.machine, options.num_blocks, digit, step));
      }

      const TraceRunResult run = run_trace(trace, policy, options.checker);
      result.sequences += 1;
      result.accesses += run.accesses;
      if (!run.ok()) {
        result.failing_sequences += 1;
        if (result.failures.size() < options.max_failures &&
            !run.violations.empty()) {
          // Keep only the prefix up to the first violating access: the
          // shortest repro this sequence yields.
          ReproTrace repro = trace;
          repro.accesses.resize(static_cast<std::size_t>(
              run.violations.front().access_index));
          result.failures.push_back(std::move(repro));
          result.messages.push_back(run.violations.front().message());
        }
      }
    }
  }
  return result;
}

}  // namespace lssim::check
