// Replays a ReproTrace through a freshly built MemorySystem with the
// invariant checker attached: the single execution primitive shared by
// the exhaustive explorer, the fuzzer, the shrinker and the repro
// regression tests — a repro that fails here fails everywhere.
#pragma once

#include <functional>
#include <memory>

#include "check/invariants.hpp"
#include "check/repro.hpp"
#include "core/coherence_policy.hpp"

namespace lssim::check {

/// Builds the policy a verification run injects in place of the
/// registry-resolved one. The null factory (default) uses the registry —
/// i.e. verifies the real policies. Fault-injection tests pass a factory
/// producing a deliberately broken policy to prove the checker catches
/// it (see fuzzer.hpp's make_skip_detag_policy).
using PolicyFactory =
    std::function<std::unique_ptr<CoherencePolicy>(const MachineConfig&)>;

struct TraceRunResult {
  std::uint64_t accesses = 0;
  std::uint64_t total_violations = 0;
  /// Retained violations (capped by CheckerOptions::max_violations).
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return total_violations == 0; }
};

/// Runs `trace` from a cold machine, checking invariants after every
/// access. Deterministic: same trace, same result.
[[nodiscard]] TraceRunResult run_trace(const ReproTrace& trace,
                                       const PolicyFactory& policy = {},
                                       const CheckerOptions& options = {});

/// The tiny machine shape verification runs on (paper-default protocol
/// knobs, 32 B direct-mapped L1 over a 64 B direct-mapped L2 with 16-byte
/// blocks): small enough that a handful of accesses exercises
/// replacements, upgrades and all four directory states.
[[nodiscard]] MachineConfig tiny_machine(
    int nodes, ProtocolKind kind = ProtocolKind::kBaseline);

/// Block-aligned addresses verification traces touch: consecutive blocks
/// spaced one L2-way apart so they contend for the same set and force
/// victim/writeback paths.
[[nodiscard]] Addr verification_block(const MachineConfig& machine,
                                      int index);

}  // namespace lssim::check
