// Seeded trace fuzzer with a delta-debugging shrinker.
//
// The explorer's exhaustive bound stops at a handful of accesses; the
// fuzzer covers the territory beyond it: longer traces, atomic RMWs,
// sub-block offsets, randomized protocol knobs (hysteresis depths,
// default-tagged, lone-write heuristic, limited-pointer directories) and
// randomized machine shapes. Everything derives from one seed — a
// failure reported for (seed, iteration) replays exactly — and a failing
// trace is ddmin-shrunk to a 1-minimal repro before it is reported,
// because a 4-access repro is a bug report and a 200-access trace is
// homework. tools/lssim_fuzz is the CLI; tests/check/ pins fixed seeds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/trace_runner.hpp"

namespace lssim {
class HeartbeatEmitter;  // exec/heartbeat.hpp
}

namespace lssim::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Random traces to generate and check.
  int iterations = 100;
  /// Accesses per trace.
  int trace_length = 48;
  /// Protocol kinds to draw from. Empty = all registered.
  std::vector<ProtocolKind> protocols;
  /// Replay every generated trace under EVERY protocol kind instead of
  /// sampling one per iteration: the capture-once / replay-many pattern
  /// (the generated access stream is fixed, so one generation feeds the
  /// whole protocol sweep and divergent protocol bugs surface on the
  /// same stimulus). Off by default — sampling covers more streams per
  /// CPU-second.
  bool compare_protocols = false;
  /// Also randomize §5.5 knobs and the directory scheme (on by default;
  /// off pins the paper-default knobs, which the LS tag model verifies
  /// most strictly).
  bool randomize_knobs = true;
  /// ddmin-shrink failing traces before reporting them.
  bool shrink = true;
  /// Failing traces kept as repros (counting continues past the cap).
  std::size_t max_failures = 4;
  /// Tiny configs afford the strictest mode: full sweep every access.
  CheckerOptions checker{.full_scan_interval = 1};
  /// Progress reporting for long campaigns (exec/heartbeat.hpp): one
  /// unit_done per checked trace, phases "generate"/"check"/"shrink".
  /// Null (default) = off.
  HeartbeatEmitter* heartbeat = nullptr;
};

struct FuzzResult {
  std::uint64_t traces = 0;
  std::uint64_t accesses = 0;
  /// Protocol replays performed (== traces unless compare_protocols).
  std::uint64_t replays = 0;
  /// Generated traces that failed under at least one protocol.
  std::uint64_t failing_traces = 0;
  /// Shrunk (when enabled) repro per failing trace, capped.
  std::vector<ReproTrace> failures;
  /// First violation message per retained failure (parallel array).
  std::vector<std::string> messages;

  [[nodiscard]] bool ok() const noexcept { return failing_traces == 0; }
};

/// Generates, checks and (on failure) shrinks random traces. `policy`
/// (optional) injects a policy override — the fault-injection seam the
/// selftest uses.
[[nodiscard]] FuzzResult run_fuzzer(const FuzzOptions& options,
                                    const PolicyFactory& policy = {});

/// Delta-debugging (ddmin) shrink: removes chunks of accesses while the
/// trace still fails under the same policy/options, down to 1-minimal
/// (no single access can be removed). Returns `trace` unchanged if it
/// does not fail in the first place.
[[nodiscard]] ReproTrace shrink_repro(const ReproTrace& trace,
                                      const PolicyFactory& policy = {},
                                      const CheckerOptions& options = {});

/// Factory for a deliberately broken LS policy: identical tag rules,
/// but it skips the §3.1 de-tag on a foreign access to an LStemp-held
/// block. The standing fault-injection target (`lssim_fuzz selftest`,
/// tests/check/) proving the checker catches a forgotten de-tag rule
/// with a shrunk repro.
[[nodiscard]] PolicyFactory skip_detag_policy_factory();

}  // namespace lssim::check
