// Workload factory + result formatting for the lssim_run driver.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/options.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/coherence_trace.hpp"
#include "telemetry/registry.hpp"
#include "workloads/harness.hpp"

namespace lssim {

class HeartbeatEmitter;  // exec/heartbeat.hpp

/// True if `name` names a workload the driver can build.
[[nodiscard]] bool driver_knows_workload(const std::string& name);

/// Resolves a comma-separated protocol list (e.g. "baseline,LS,ls+ad")
/// through the protocol registry. Names match case-insensitively
/// (canonical names or aliases); duplicates are dropped, keeping the
/// first occurrence's position. On an empty element or unknown name,
/// returns false and sets `*error` to a message listing the registered
/// protocol names.
bool resolve_protocol_list(const std::string& csv,
                           std::vector<ProtocolKind>* out,
                           std::string* error);

/// As resolve_protocol_list, for --directories: resolves a
/// comma-separated list of directory-organisation names through the
/// directory registry. On failure the error message lists the
/// registered organisation names.
bool resolve_directory_list(const std::string& csv,
                            std::vector<DirectoryKind>* out,
                            std::string* error);

/// As resolve_protocol_list, for --interconnects: resolves a
/// comma-separated list of transport names through the shared
/// interconnect name table (sim/config.hpp). On failure the error
/// message lists the registered transport names.
bool resolve_interconnect_list(const std::string& csv,
                               std::vector<InterconnectKind>* out,
                               std::string* error);

/// Canonical interconnect names joined by `sep`, table order — the
/// --interconnect half of registered_protocol_names().
[[nodiscard]] std::string registered_interconnect_names(
    const char* sep = ", ");

/// Builds the WorkloadBuilder for `options.workload` with its --set
/// parameters applied; throws std::invalid_argument on unknown workloads
/// or parameters. Useful for callers that own their System (tracing).
WorkloadBuilder make_driver_builder(const DriverOptions& options);

/// Runs `options.workload` under `kind`; throws std::invalid_argument on
/// unknown workloads or bad parameters.
RunResult run_driver_workload(const DriverOptions& options,
                              ProtocolKind kind);

/// One protocol run plus the telemetry captured from it (both empty/
/// disabled unless the corresponding --*-out flag was given).
struct DriverRun {
  RunResult result;
  MetricsSnapshot metrics;
  CoherenceTrace trace{0};
  /// --audit-out: the tag-decision audit ring captured from the run
  /// (empty/disabled unless auditing was enabled).
  TagAuditLog audit{0};
  /// --check-invariants: total violations and the retained messages
  /// (capped; see check::CheckerOptions::max_violations). Zero/empty
  /// when checking is off or the run was clean.
  std::uint64_t invariant_violations = 0;
  std::vector<std::string> invariant_messages;
};

/// As run_driver_workload, additionally enabling telemetry according to
/// `options` and capturing the metrics snapshot, coherence trace and
/// audit ring. `heartbeat` (optional) receives per-phase wall time and
/// one unit_done per completed run.
DriverRun run_driver_workload_captured(const DriverOptions& options,
                                       ProtocolKind kind,
                                       HeartbeatEmitter* heartbeat = nullptr);

/// Runs the full `options.protocols` × `options.directories` ×
/// `options.interconnects` matrix (protocol-major, interconnect
/// innermost), fanned out across up to `options.jobs` host threads
/// (0 = all cores). Results are ordered by that matrix regardless of
/// completion order, so reports, manifests and Perfetto exports are
/// byte-identical to a serial sweep. `heartbeat` (optional,
/// thread-safe) observes progress across workers.
std::vector<DriverRun> run_driver_workloads_captured(
    const DriverOptions& options, HeartbeatEmitter* heartbeat = nullptr);

/// Outcome of a capture-once / replay-many driver invocation.
struct ReplayDriverOutcome {
  /// Replayed results, protocols × directories matrix order (the same
  /// order run_driver_workloads_captured produces).
  std::vector<RunResult> results;
  /// --replay-crosscheck: the live executed result per matrix cell
  /// (empty otherwise).
  std::vector<RunResult> executed;
  /// --replay-crosscheck: one "label: field: executed N, replayed M"
  /// line per diverging stat; empty when every cell agrees.
  std::vector<std::string> divergences;
  std::size_t trace_accesses = 0;  ///< Length of the driving trace.
};

/// Capture-once / replay-many driver path (--replay-compare & friends):
/// executes the workload once (or loads --replay-from), then drives the
/// protocols × directories matrix by replaying the captured stream
/// across up to options.jobs threads. Saves the trace to
/// --capture-trace when requested. Throws TraceConfigMismatch when a
/// loaded trace's config hash does not match the machine, and the usual
/// std::invalid_argument for bad workloads/configs.
ReplayDriverOutcome run_driver_replay(const DriverOptions& options);

/// Writes the requested artifact files (--metrics-out, --perfetto-out,
/// --manifest-out, --latency-out, --audit-out). Returns false and sets
/// `*error` when any output stream fails; artifacts already written stay
/// on disk.
bool write_driver_artifacts(const DriverOptions& options,
                            const std::vector<DriverRun>& runs,
                            double wall_seconds, std::string* error);

/// Prints one or more results in the requested format. For kText with
/// several results, values are also shown normalized to the first.
void print_driver_results(std::ostream& os, const DriverOptions& options,
                          const std::vector<RunResult>& results);

}  // namespace lssim
