// Workload factory + result formatting for the lssim_run driver.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/options.hpp"
#include "workloads/harness.hpp"

namespace lssim {

/// True if `name` names a workload the driver can build.
[[nodiscard]] bool driver_knows_workload(const std::string& name);

/// Builds the WorkloadBuilder for `options.workload` with its --set
/// parameters applied; throws std::invalid_argument on unknown workloads
/// or parameters. Useful for callers that own their System (tracing).
WorkloadBuilder make_driver_builder(const DriverOptions& options);

/// Runs `options.workload` under `kind`; throws std::invalid_argument on
/// unknown workloads or bad parameters.
RunResult run_driver_workload(const DriverOptions& options,
                              ProtocolKind kind);

/// Prints one or more results in the requested format. For kText with
/// several results, values are also shown normalized to the first.
void print_driver_results(std::ostream& os, const DriverOptions& options,
                          const std::vector<RunResult>& results);

}  // namespace lssim
