#include "driver/options.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "core/directory_registry.hpp"
#include "core/protocol_registry.hpp"
#include "driver/runner.hpp"

namespace lssim {
namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

bool parse_size(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::string digits = text;
  std::uint64_t scale = 1;
  const char suffix = static_cast<char>(std::tolower(
      static_cast<unsigned char>(digits.back())));
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    scale = suffix == 'k' ? 1024ull
                          : (suffix == 'm' ? 1024ull * 1024
                                           : 1024ull * 1024 * 1024);
    digits.pop_back();
  }
  std::uint64_t value = 0;
  if (!parse_u64(digits, &value)) return false;
  *out = value * scale;
  return true;
}

bool parse_protocol(const std::string& text, ProtocolKind* out) {
  // Single naming table: the registry resolves canonical names and
  // aliases case-insensitively, so parsing round-trips to_string exactly.
  const ProtocolInfo* info = find_protocol(text);
  if (info == nullptr) {
    return false;
  }
  *out = info->kind;
  return true;
}

bool parse_topology(const std::string& text, Topology* out) {
  const std::string name = lower(text);
  if (name == "crossbar" || name == "xbar" || name == "p2p") {
    *out = Topology::kCrossbar;
  } else if (name == "ring") {
    *out = Topology::kRing;
  } else if (name == "mesh" || name == "mesh2d") {
    *out = Topology::kMesh2D;
  } else {
    return false;
  }
  return true;
}

std::string driver_usage() {
  return "lssim_run — run one workload on the simulated CC-NUMA machine\n"
         "\n"
         "  --workload W       mp3d | cholesky | lu | oltp | radix | "
         "stencil |\n"
         "                     pingpong | private | readmostly  "
         "(default pingpong)\n"
         "  --protocol P       " +
         registered_protocol_names(" | ") +
         "\n"
         "                     (default Baseline, case-insensitive)\n"
         "  --compare          run every registered protocol, normalized "
         "to Baseline" +
         R"(
  --procs N          processors (1..256, default 4; full-map needs <= 64)
  --l1 SIZE          L1 capacity, e.g. 4k             (default per paper)
  --l2 SIZE          L2 capacity, e.g. 64k
  --assoc N          L1 associativity
  --block BYTES      cache block size (both levels)
  --topology T       crossbar | ring | mesh           (default crossbar)
  --consistency C    sc | pc                          (default sc)
  --false-sharing    enable the Dubois classifier
  --seed N           deterministic seed               (default 1)
  --set KEY=VALUE    workload parameter (repeatable), e.g.
                     --set particles=4000 --set txns_per_proc=500
  --format F         text | csv | json                (default text)

  --protocols A,B    run several protocols (e.g. baseline,ls)
  --directory D      directory organisation: )" +
         registered_directory_names(" | ") + R"(
                     (default full-map, case-insensitive)
  --directories A,B  sweep several organisations; the driver runs the
                     full protocols x directories matrix
  --interconnect I   coherence transport: )" +
         registered_interconnect_names(" | ") + R"(
                     (default network, case-insensitive)
  --interconnects A,B
                     sweep several transports; third matrix axis
                     (protocols x directories x interconnects)
  --bus-arb A        bus arbitration: fcfs | round-robin (default fcfs;
                     only applies under --interconnect bus)
  --list-protocols   print registered protocol names, one per line
  --list-directories print registered directory organisations
  --list-interconnects
                     print registered coherence transports
  --dir-pointers N   limited-ptr: pointers per entry (1..7, default 4)
  --dir-region N     coarse: nodes per presence bit (0 = auto)
  --dir-entries N    sparse: directory-cache capacity (0 = auto 1024)
  --jobs N           host threads for multi-protocol sweeps
                     (default: all cores; results identical for any N)
  --metrics-out F    write metrics snapshots as JSON ("-" = stdout)
  --perfetto-out F   write a Chrome trace-event JSON timeline
                     (open in ui.perfetto.dev or chrome://tracing)
  --manifest-out F   write the versioned run manifest (JSON)
  --trace-capacity N max trace events kept per run
                     (default 1048576 when --perfetto-out is set)
  --latency-out F    write the ownership-latency report (JSON, "-" =
                     stdout): per-protocol p50/p95/p99 of read-miss /
                     write-miss / upgrade transaction latencies
  --audit-out F      write the tag-decision audit trail (JSONL, "-" =
                     stdout): every tag/de-tag/hysteresis transition
                     with its reason code (docs/OBSERVABILITY.md)
  --audit-capacity N audit records kept per run (last-N ring;
                     default 1048576 when --audit-out is set)
  --heartbeat-out F  write progress heartbeats (JSONL, "-" = stderr):
                     runs completed, accesses/sec, per-phase wall time
  --heartbeat-interval S
                     seconds between heartbeats (default 10;
                     0 = one line per completed run)
  --check-invariants verify coherence invariants after every access
                     (docs/VERIFICATION.md; slow — exit 4 on violation)

  Capture-once / replay-many (docs/PERFORMANCE.md):
  --replay-compare   execute the workload once, then drive the whole
                     protocols x directories matrix by replaying the
                     captured access stream (exact for runs whose access
                     stream is timing-independent; figures stay
                     execution-driven)
  --capture-trace F  save the captured trace (versioned format with a
                     machine-config hash) for later --replay-from
  --replay-from F    replay a saved trace instead of capturing; exits 2
                     when the trace's config hash does not match the
                     machine being simulated
  --replay-crosscheck
                     also execute every matrix cell live and verify the
                     replayed stats match bit-for-bit (exit 5 and a
                     field-by-field diff on divergence)
  --help             this text
)";
}

bool parse_driver_args(int argc, const char* const* argv,
                       DriverOptions* options, std::string* error) {
  auto need_value = [&](int& i, std::string* value) {
    if (i + 1 >= argc) {
      *error = std::string("missing value after ") + argv[i];
      return false;
    }
    *value = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options->show_help = true;
    } else if (arg == "--workload") {
      if (!need_value(i, &value)) return false;
      options->workload = lower(value);
    } else if (arg == "--protocol") {
      if (!need_value(i, &value)) return false;
      ProtocolKind kind;
      if (!parse_protocol(value, &kind)) {
        *error = "unknown protocol: " + value +
                 " (registered: " + registered_protocol_names() + ")";
        return false;
      }
      options->protocols = {kind};
    } else if (arg == "--protocols") {
      if (!need_value(i, &value)) return false;
      std::vector<ProtocolKind> kinds;
      if (!resolve_protocol_list(value, &kinds, error)) return false;
      options->protocols = std::move(kinds);
    } else if (arg == "--directory") {
      if (!need_value(i, &value)) return false;
      const DirectoryInfo* info = find_directory(value);
      if (info == nullptr) {
        *error = "unknown directory organisation: " + value +
                 " (registered: " + registered_directory_names() + ")";
        return false;
      }
      options->directories = {info->kind};
      options->machine.directory_scheme = info->kind;
    } else if (arg == "--directories") {
      if (!need_value(i, &value)) return false;
      std::vector<DirectoryKind> kinds;
      if (!resolve_directory_list(value, &kinds, error)) return false;
      options->directories = std::move(kinds);
      options->machine.directory_scheme = options->directories.front();
    } else if (arg == "--interconnect") {
      if (!need_value(i, &value)) return false;
      InterconnectKind kind;
      if (!interconnect_from_name(value, &kind)) {
        *error = "unknown interconnect: " + value +
                 " (registered: " + registered_interconnect_names() + ")";
        return false;
      }
      options->interconnects = {kind};
      options->machine.interconnect = kind;
    } else if (arg == "--interconnects") {
      if (!need_value(i, &value)) return false;
      std::vector<InterconnectKind> kinds;
      if (!resolve_interconnect_list(value, &kinds, error)) return false;
      options->interconnects = std::move(kinds);
      options->machine.interconnect = options->interconnects.front();
    } else if (arg == "--bus-arb") {
      if (!need_value(i, &value)) return false;
      if (!bus_arbitration_from_name(value,
                                     &options->machine.bus_arbitration)) {
        *error = "unknown bus arbitration (fcfs | round-robin): " + value;
        return false;
      }
    } else if (arg == "--list-protocols") {
      options->list_protocols = true;
    } else if (arg == "--list-directories") {
      options->list_directories = true;
    } else if (arg == "--list-interconnects") {
      options->list_interconnects = true;
    } else if (arg == "--dir-pointers") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n < 1 || n > 7) {
        *error = "bad --dir-pointers (expected 1..7): " + value;
        return false;
      }
      options->machine.directory_pointers = static_cast<std::uint8_t>(n);
    } else if (arg == "--dir-region") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n > 256) {
        *error = "bad --dir-region (expected 0..256, 0 = auto): " + value;
        return false;
      }
      options->machine.directory_region = static_cast<std::uint16_t>(n);
    } else if (arg == "--dir-entries") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n)) {
        *error = "bad --dir-entries: " + value;
        return false;
      }
      options->machine.directory_entries = static_cast<std::uint32_t>(n);
    } else if (arg == "--metrics-out") {
      if (!need_value(i, &value)) return false;
      options->metrics_out = value;
    } else if (arg == "--perfetto-out") {
      if (!need_value(i, &value)) return false;
      options->perfetto_out = value;
    } else if (arg == "--manifest-out") {
      if (!need_value(i, &value)) return false;
      options->manifest_out = value;
    } else if (arg == "--latency-out") {
      if (!need_value(i, &value)) return false;
      options->latency_out = value;
    } else if (arg == "--audit-out") {
      if (!need_value(i, &value)) return false;
      options->audit_out = value;
    } else if (arg == "--audit-capacity") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n)) {
        *error = "bad --audit-capacity: " + value;
        return false;
      }
      options->audit_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--heartbeat-out") {
      if (!need_value(i, &value)) return false;
      options->heartbeat_out = value;
    } else if (arg == "--heartbeat-interval") {
      if (!need_value(i, &value)) return false;
      char* end = nullptr;
      const double secs = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || secs < 0.0) {
        *error = "bad --heartbeat-interval (seconds >= 0): " + value;
        return false;
      }
      options->heartbeat_interval = secs;
    } else if (arg == "--jobs") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n > 1024) {
        *error = "bad --jobs (expected 0..1024, 0 = all cores): " + value;
        return false;
      }
      options->jobs = static_cast<int>(n);
    } else if (arg == "--trace-capacity") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n)) {
        *error = "bad --trace-capacity: " + value;
        return false;
      }
      options->trace_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--check-invariants") {
      options->machine.check_invariants = true;
    } else if (arg == "--compare") {
      options->compare = true;
      options->protocols = all_protocol_kinds();
    } else if (arg == "--capture-trace") {
      if (!need_value(i, &value)) return false;
      options->capture_trace_out = value;
    } else if (arg == "--replay-from") {
      if (!need_value(i, &value)) return false;
      options->replay_from = value;
    } else if (arg == "--replay-compare") {
      options->replay_compare = true;
    } else if (arg == "--replay-crosscheck") {
      options->replay_crosscheck = true;
    } else if (arg == "--procs") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n < 1 || n > kMaxNodes) {
        *error = "bad --procs: " + value;
        return false;
      }
      options->machine.num_nodes = static_cast<int>(n);
    } else if (arg == "--l1" || arg == "--l2") {
      if (!need_value(i, &value)) return false;
      std::uint64_t bytes = 0;
      if (!parse_size(value, &bytes) || bytes == 0) {
        *error = "bad size: " + value;
        return false;
      }
      (arg == "--l1" ? options->machine.l1 : options->machine.l2)
          .size_bytes = static_cast<std::uint32_t>(bytes);
    } else if (arg == "--assoc") {
      if (!need_value(i, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n == 0) {
        *error = "bad --assoc: " + value;
        return false;
      }
      options->machine.l1.assoc = static_cast<std::uint32_t>(n);
    } else if (arg == "--block") {
      if (!need_value(i, &value)) return false;
      std::uint64_t bytes = 0;
      if (!parse_size(value, &bytes) || bytes == 0) {
        *error = "bad --block: " + value;
        return false;
      }
      options->machine.l1.block_bytes = static_cast<std::uint32_t>(bytes);
      options->machine.l2.block_bytes = static_cast<std::uint32_t>(bytes);
    } else if (arg == "--topology") {
      if (!need_value(i, &value)) return false;
      if (!parse_topology(value, &options->machine.topology)) {
        *error = "unknown topology: " + value;
        return false;
      }
    } else if (arg == "--consistency") {
      if (!need_value(i, &value)) return false;
      const std::string name = lower(value);
      if (name == "sc") {
        options->machine.consistency = ConsistencyModel::kSc;
      } else if (name == "pc") {
        options->machine.consistency = ConsistencyModel::kPc;
      } else {
        *error = "unknown consistency model: " + value;
        return false;
      }
    } else if (arg == "--false-sharing") {
      options->machine.classify_false_sharing = true;
    } else if (arg == "--seed") {
      if (!need_value(i, &value)) return false;
      if (!parse_u64(value, &options->seed)) {
        *error = "bad --seed: " + value;
        return false;
      }
    } else if (arg == "--set") {
      if (!need_value(i, &value)) return false;
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        *error = "--set expects KEY=VALUE, got: " + value;
        return false;
      }
      options->params[value.substr(0, eq)] = value.substr(eq + 1);
    } else if (arg == "--format") {
      if (!need_value(i, &value)) return false;
      const std::string name = lower(value);
      if (name == "text") {
        options->format = OutputFormat::kText;
      } else if (name == "csv") {
        options->format = OutputFormat::kCsv;
      } else if (name == "json") {
        options->format = OutputFormat::kJson;
      } else {
        *error = "unknown format: " + value;
        return false;
      }
    } else {
      *error = "unknown argument: " + arg;
      return false;
    }
  }
  return true;
}

}  // namespace lssim
