#include "driver/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <set>
#include <stdexcept>

#include "check/invariants.hpp"
#include "core/directory_registry.hpp"
#include "core/protocol_registry.hpp"
#include "exec/heartbeat.hpp"
#include "exec/parallel_executor.hpp"
#include "stats/report.hpp"
#include "telemetry/latency_report.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/perfetto.hpp"
#include "trace/replay_compare.hpp"

#include "workloads/cholesky.hpp"
#include "workloads/lu.hpp"
#include "workloads/micro.hpp"
#include "workloads/mp3d.hpp"
#include "workloads/oltp.hpp"
#include "workloads/stencil.hpp"
#include "workloads/radix.hpp"

namespace lssim {
namespace {

class ParamReader {
 public:
  explicit ParamReader(const std::map<std::string, std::string>& params)
      : params_(params) {}

  void get(const char* key, int* out) {
    const auto it = params_.find(key);
    if (it == params_.end()) return;
    consumed_.insert(key);
    *out = std::atoi(it->second.c_str());
  }
  void get(const char* key, double* out) {
    const auto it = params_.find(key);
    if (it == params_.end()) return;
    consumed_.insert(key);
    *out = std::atof(it->second.c_str());
  }
  // Cycles is an alias of std::uint64_t: one overload serves both.
  void get(const char* key, std::uint64_t* out) {
    const auto it = params_.find(key);
    if (it == params_.end()) return;
    consumed_.insert(key);
    *out = std::strtoull(it->second.c_str(), nullptr, 10);
  }

  /// Throws if any --set key was not consumed by the chosen workload.
  void check_all_consumed() const {
    for (const auto& [key, value] : params_) {
      if (consumed_.find(key) == consumed_.end()) {
        throw std::invalid_argument("unknown workload parameter: " + key);
      }
    }
  }

 private:
  const std::map<std::string, std::string>& params_;
  std::set<std::string> consumed_;
};

}  // namespace

bool driver_knows_workload(const std::string& name) {
  return name == "mp3d" || name == "cholesky" || name == "lu" ||
         name == "oltp" || name == "radix" || name == "stencil" ||
         name == "pingpong" || name == "private" || name == "readmostly";
}

bool resolve_protocol_list(const std::string& csv,
                           std::vector<ProtocolKind>* out,
                           std::string* error) {
  std::vector<ProtocolKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string name = csv.substr(start, comma - start);
    const ProtocolInfo* info = find_protocol(name);
    if (info == nullptr) {
      *error = "unknown protocol '" + name + "' in --protocols " + csv +
               " (registered: " + registered_protocol_names() + ")";
      return false;
    }
    if (std::find(kinds.begin(), kinds.end(), info->kind) == kinds.end()) {
      kinds.push_back(info->kind);
    }
    start = comma + 1;
  }
  *out = std::move(kinds);
  return true;
}

bool resolve_directory_list(const std::string& csv,
                            std::vector<DirectoryKind>* out,
                            std::string* error) {
  std::vector<DirectoryKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string name = csv.substr(start, comma - start);
    const DirectoryInfo* info = find_directory(name);
    if (info == nullptr) {
      *error = "unknown directory organisation '" + name +
               "' in --directories " + csv +
               " (registered: " + registered_directory_names() + ")";
      return false;
    }
    if (std::find(kinds.begin(), kinds.end(), info->kind) == kinds.end()) {
      kinds.push_back(info->kind);
    }
    start = comma + 1;
  }
  *out = std::move(kinds);
  return true;
}

bool resolve_interconnect_list(const std::string& csv,
                               std::vector<InterconnectKind>* out,
                               std::string* error) {
  std::vector<InterconnectKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string name = csv.substr(start, comma - start);
    InterconnectKind kind;
    if (!interconnect_from_name(name, &kind)) {
      *error = "unknown interconnect '" + name + "' in --interconnects " +
               csv + " (registered: " + registered_interconnect_names() +
               ")";
      return false;
    }
    if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end()) {
      kinds.push_back(kind);
    }
    start = comma + 1;
  }
  *out = std::move(kinds);
  return true;
}

std::string registered_interconnect_names(const char* sep) {
  std::string joined;
  for (const InterconnectNameEntry& entry : kInterconnectNameTable) {
    if (!joined.empty()) joined += sep;
    joined += entry.name;
  }
  return joined;
}

WorkloadBuilder make_driver_builder(const DriverOptions& options) {
  ParamReader reader(options.params);
  WorkloadBuilder build;

  if (options.workload == "mp3d") {
    Mp3dParams p;
    reader.get("particles", &p.particles);
    reader.get("steps", &p.steps);
    reader.get("seed", &p.seed);
    build = [p](System& sys) { build_mp3d(sys, p); };
  } else if (options.workload == "cholesky") {
    CholeskyParams p;
    reader.get("n", &p.n);
    reader.get("bandwidth", &p.bandwidth);
    reader.get("successors", &p.successors);
    reader.get("window", &p.window);
    reader.get("locality", &p.locality);
    reader.get("seed", &p.seed);
    build = [p](System& sys) { build_cholesky(sys, p); };
  } else if (options.workload == "lu") {
    LuParams p;
    reader.get("n", &p.n);
    reader.get("seed", &p.seed);
    build = [p](System& sys) { build_lu(sys, p); };
  } else if (options.workload == "oltp") {
    OltpParams p;
    reader.get("branches", &p.branches);
    reader.get("accounts", &p.accounts);
    reader.get("txns_per_proc", &p.txns_per_proc);
    reader.get("lookup_fraction", &p.lookup_fraction);
    reader.get("hot_accounts", &p.hot_accounts);
    reader.get("think_cycles", &p.think_cycles);
    reader.get("seed", &p.seed);
    build = [p](System& sys) { build_oltp(sys, p); };
  } else if (options.workload == "radix") {
    RadixParams p;
    reader.get("keys", &p.keys);
    reader.get("radix_bits", &p.radix_bits);
    reader.get("key_bits", &p.key_bits);
    reader.get("seed", &p.seed);
    build = [p](System& sys) { build_radix(sys, p); };
  } else if (options.workload == "stencil") {
    StencilParams p;
    reader.get("width", &p.width);
    reader.get("height", &p.height);
    reader.get("sweeps", &p.sweeps);
    reader.get("seed", &p.seed);
    build = [p](System& sys) { build_stencil(sys, p); };
  } else if (options.workload == "pingpong") {
    PingPongParams p;
    reader.get("rounds", &p.rounds);
    reader.get("counters", &p.counters);
    reader.get("sync", &p.sync);
    build = [p](System& sys) { build_pingpong(sys, p); };
  } else if (options.workload == "private") {
    PrivateRmwParams p;
    reader.get("words_per_proc", &p.words_per_proc);
    reader.get("sweeps", &p.sweeps);
    reader.get("sync", &p.sync);
    build = [p](System& sys) { build_private_rmw(sys, p); };
  } else if (options.workload == "readmostly") {
    ReadMostlyParams p;
    reader.get("words", &p.words);
    reader.get("rounds", &p.rounds);
    reader.get("sync", &p.sync);
    build = [p](System& sys) { build_read_mostly(sys, p); };
  } else {
    throw std::invalid_argument("unknown workload: " + options.workload);
  }
  reader.check_all_consumed();
  return build;
}

RunResult run_driver_workload(const DriverOptions& options,
                              ProtocolKind kind) {
  MachineConfig cfg = options.machine;
  cfg.protocol.kind = kind;
  const std::string problem = cfg.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("invalid machine configuration: " + problem);
  }
  return run_experiment(cfg, make_driver_builder(options), options.seed);
}

namespace {

/// Telemetry configuration implied by the output flags: metrics whenever
/// a metrics, manifest or latency file is requested, tracing whenever a
/// trace file is, auditing whenever an audit file is (1M-record default
/// capacities for both rings).
TelemetryConfig telemetry_for(const DriverOptions& options) {
  TelemetryConfig t;
  t.metrics = !options.metrics_out.empty() ||
              !options.manifest_out.empty() || !options.latency_out.empty();
  t.trace_capacity = options.trace_capacity;
  if (t.trace_capacity == 0 && !options.perfetto_out.empty()) {
    t.trace_capacity = std::size_t{1} << 20;
  }
  t.audit_capacity = options.audit_capacity;
  if (t.audit_capacity == 0 && !options.audit_out.empty()) {
    t.audit_capacity = std::size_t{1} << 20;
  }
  return t;
}

}  // namespace

DriverRun run_driver_workload_captured(const DriverOptions& options,
                                       ProtocolKind kind,
                                       HeartbeatEmitter* heartbeat) {
  MachineConfig cfg = options.machine;
  cfg.protocol.kind = kind;
  cfg.telemetry = telemetry_for(options);
  const std::string problem = cfg.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("invalid machine configuration: " + problem);
  }
  DriverRun run;
  WorkloadBuilder builder;
  {
    const PhaseTimer timer(heartbeat, "build");
    builder = make_driver_builder(options);
  }
  {
    const PhaseTimer timer(heartbeat, "simulate");
    run.result = run_experiment(
        cfg, std::move(builder), options.seed, [&run](System& sys) {
          if (sys.telemetry().metrics_enabled()) {
            run.metrics = sys.telemetry().registry().snapshot();
          }
          run.trace = sys.telemetry().coherence_trace();
          run.audit = sys.telemetry().audit_log();
          if (const check::InvariantChecker* c = sys.invariant_checker()) {
            run.invariant_violations = c->violation_count();
            run.invariant_messages = c->messages();
          }
        });
  }
  if (heartbeat != nullptr) {
    heartbeat->unit_done(run.result.accesses);
  }
  return run;
}

std::vector<DriverRun> run_driver_workloads_captured(
    const DriverOptions& options, HeartbeatEmitter* heartbeat) {
  // Surface workload/parameter errors before any worker starts (and
  // build each task's own builder inside the task — the ownership rule
  // at the executor seam: nothing mutable is shared between runs).
  (void)make_driver_builder(options);
  // Protocol-major matrix, interconnect innermost: for --directories a,b
  // --interconnects x,y the runs come out as p0@a@x, p0@a@y, p0@b@x, ...
  // With a single directory and a single interconnect this degenerates
  // to the plain per-protocol sweep.
  const std::size_t dirs = std::max<std::size_t>(1, options.directories.size());
  const std::size_t nets =
      std::max<std::size_t>(1, options.interconnects.size());
  return parallel_map<DriverRun>(
      options.protocols.size() * dirs * nets, options.jobs,
      [&options, heartbeat, dirs, nets](std::size_t i) {
        DriverOptions task = options;
        if (!options.directories.empty()) {
          task.machine.directory_scheme =
              options.directories[(i / nets) % dirs];
        }
        if (!options.interconnects.empty()) {
          task.machine.interconnect = options.interconnects[i % nets];
        }
        return run_driver_workload_captured(
            task, options.protocols[i / (dirs * nets)], heartbeat);
      });
}

namespace {

/// Writes one artifact via `emit` to `path` ("-" = stdout), with an
/// explicit flush-and-check so mid-write failures (full disk, closed
/// pipe) surface as errors rather than truncated files.
template <typename Emit>
bool write_artifact(const std::string& path, const char* what, Emit&& emit,
                    std::string* error) {
  if (path == "-") {
    emit(std::cout);
    std::cout.flush();
    if (!std::cout) {
      *error = std::string("failed writing ") + what + " to stdout";
      return false;
    }
    return true;
  }
  std::ofstream os(path);
  if (!os) {
    *error = std::string("cannot open ") + path + " for " + what;
    return false;
  }
  emit(os);
  os.flush();
  if (!os) {
    *error = std::string("failed writing ") + what + " to " + path;
    return false;
  }
  return true;
}

/// Label for one run in artifacts and reports: the protocol name alone
/// for single-directory invocations (matching the pre-matrix driver
/// byte-for-byte), "Protocol@organisation" when sweeping several
/// directories, with "@transport" appended when sweeping interconnects.
std::string run_label(const DriverOptions& options, const RunResult& r) {
  std::string label = to_string(r.protocol);
  if (options.directories.size() > 1) {
    label += '@';
    label += directory_name(r.directory);
  }
  if (options.interconnects.size() > 1) {
    label += '@';
    label += interconnect_name(r.interconnect);
  }
  return label;
}

}  // namespace

ReplayDriverOutcome run_driver_replay(const DriverOptions& options) {
  // The capture (or loaded-trace) machine: first matrix cell. Replay
  // only re-runs the protocol layer, so which cell captures is
  // irrelevant for feedback-insensitive workloads and documented as the
  // first cell otherwise.
  MachineConfig base = options.machine;
  base.protocol.kind = options.protocols.front();
  if (!options.directories.empty()) {
    base.directory_scheme = options.directories.front();
  }
  const std::string problem = base.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("invalid machine configuration: " + problem);
  }

  ReplayDriverOutcome outcome;
  Trace trace;
  if (!options.replay_from.empty()) {
    std::ifstream is(options.replay_from, std::ios::binary);
    if (!is) {
      throw std::runtime_error("cannot open trace file: " +
                               options.replay_from);
    }
    trace = Trace::load(is);
  } else {
    trace = capture_trace(base, make_driver_builder(options), options.seed,
                          options.workload)
                .trace;
  }
  if (!options.capture_trace_out.empty()) {
    std::ofstream os(options.capture_trace_out, std::ios::binary);
    if (!os) {
      throw std::runtime_error("cannot open " + options.capture_trace_out +
                               " for the captured trace");
    }
    trace.save(os);
    os.flush();
    if (!os) {
      throw std::runtime_error("failed writing trace to " +
                               options.capture_trace_out);
    }
  }
  outcome.trace_accesses = trace.size();

  const ReplayCompareEngine engine(trace, base);
  outcome.results =
      engine.replay_matrix(options.protocols, options.directories,
                           options.jobs);

  if (options.replay_crosscheck) {
    // Ground truth: execute every cell live (same matrix, same fan-out)
    // and diff each replayed RunResult against it field by field.
    const std::size_t dirs =
        std::max<std::size_t>(1, options.directories.size());
    outcome.executed = parallel_map<RunResult>(
        options.protocols.size() * dirs, options.jobs,
        [&options, &base, dirs](std::size_t i) {
          MachineConfig cfg = base;
          cfg.protocol.kind = options.protocols[i / dirs];
          if (!options.directories.empty()) {
            cfg.directory_scheme = options.directories[i % dirs];
          }
          return run_experiment(cfg, make_driver_builder(options),
                                options.seed);
        });
    for (std::size_t i = 0; i < outcome.results.size(); ++i) {
      const std::string label = run_label(options, outcome.results[i]);
      for (const std::string& diff :
           compare_replay(outcome.executed[i], outcome.results[i])) {
        outcome.divergences.push_back(label + ": " + diff);
      }
    }
  }
  return outcome;
}

bool write_driver_artifacts(const DriverOptions& options,
                            const std::vector<DriverRun>& runs,
                            double wall_seconds, std::string* error) {
  if (!options.metrics_out.empty()) {
    Json::Array documents;
    documents.reserve(runs.size());
    for (const DriverRun& run : runs) {
      Json::Object entry;
      entry.emplace_back("protocol", Json(to_string(run.result.protocol)));
      entry.emplace_back("directory",
                         Json(directory_name(run.result.directory)));
      entry.emplace_back("interconnect",
                         Json(interconnect_name(run.result.interconnect)));
      entry.emplace_back("metrics", snapshot_to_json(run.metrics));
      documents.emplace_back(std::move(entry));
    }
    const Json doc{std::move(documents)};
    const bool ok = write_artifact(
        options.metrics_out, "metrics",
        [&doc](std::ostream& os) {
          doc.write(os, 0);
          os << "\n";
        },
        error);
    if (!ok) return false;
  }
  if (!options.perfetto_out.empty()) {
    std::vector<TraceProcess> processes;
    processes.reserve(runs.size());
    for (const DriverRun& run : runs) {
      processes.push_back(
          TraceProcess{run_label(options, run.result), &run.trace, nullptr});
    }
    const bool ok = write_artifact(
        options.perfetto_out, "trace",
        [&processes](std::ostream& os) { write_chrome_trace(os, processes); },
        error);
    if (!ok) return false;
  }
  if (!options.latency_out.empty()) {
    std::vector<LatencyReportRun> entries;
    entries.reserve(runs.size());
    for (const DriverRun& run : runs) {
      entries.push_back(
          LatencyReportRun{run_label(options, run.result), &run.metrics});
    }
    const Json doc =
        latency_report_to_json(options.workload, options.seed, entries);
    const bool ok = write_artifact(
        options.latency_out, "latency report",
        [&doc](std::ostream& os) {
          doc.write(os, 0);
          os << "\n";
        },
        error);
    if (!ok) return false;
  }
  if (!options.audit_out.empty()) {
    const bool ok = write_artifact(
        options.audit_out, "audit trail",
        [&runs, &options](std::ostream& os) {
          for (const DriverRun& run : runs) {
            write_audit_jsonl(os, run.audit,
                              run_label(options, run.result));
          }
        },
        error);
    if (!ok) return false;
  }
  if (!options.manifest_out.empty()) {
    RunManifest manifest;
    manifest.workload = options.workload;
    manifest.seed = options.seed;
    manifest.params = options.params;
    manifest.machine = options.machine;
    manifest.wall_seconds = wall_seconds;
    manifest.runs.reserve(runs.size());
    for (const DriverRun& run : runs) {
      manifest.runs.push_back(
          RunManifest::ProtocolRun{run.result, run.metrics});
    }
    const bool ok = write_artifact(
        options.manifest_out, "manifest",
        [&manifest](std::ostream& os) { write_manifest(os, manifest); },
        error);
    if (!ok) return false;
  }
  return true;
}

namespace {

void print_text(std::ostream& os, const DriverOptions& options,
                const std::vector<RunResult>& results) {
  const RunResult& base = results.front();
  const bool multi_dir = options.directories.size() > 1;
  const bool multi_net = options.interconnects.size() > 1;
  // Label column widens with each swept axis; the single-axis widths
  // reproduce the pre-matrix / pre-seam headers byte-for-byte.
  std::string head = "protocol";
  if (multi_dir) head += "@directory";
  if (multi_net) head += "@interconnect";
  const int label_width = static_cast<int>(head.size()) + 1;
  os << head << "  "
     << " exec-cycles        busy  read-stall write-stall"
        "   messages  rd-misses  eliminated";
  if (results.size() > 1) os << "   (norm exec)";
  os << "\n";
  for (const RunResult& r : results) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-*s %12llu %11llu %11llu %11llu %10llu %10llu %11llu",
                  label_width, run_label(options, r).c_str(),
                  static_cast<unsigned long long>(r.exec_time),
                  static_cast<unsigned long long>(r.time.busy),
                  static_cast<unsigned long long>(r.time.read_stall),
                  static_cast<unsigned long long>(r.time.write_stall),
                  static_cast<unsigned long long>(r.traffic_total),
                  static_cast<unsigned long long>(r.global_read_misses),
                  static_cast<unsigned long long>(
                      r.eliminated_acquisitions));
    os << line;
    if (results.size() > 1) {
      std::snprintf(line, sizeof(line), "      %6.1f",
                    normalized(r.exec_time, base.exec_time));
      os << line;
    }
    os << "\n";
  }
}

void print_csv(std::ostream& os, const std::vector<RunResult>& results) {
  os << "protocol,directory,exec_cycles,busy,read_stall,write_stall,"
        "messages,read_misses,write_actions,eliminated,invalidations,"
        "false_sharing_misses,dir_entry_evictions\n";
  for (const RunResult& r : results) {
    os << to_string(r.protocol) << ',' << directory_name(r.directory) << ','
       << r.exec_time << ',' << r.time.busy
       << ',' << r.time.read_stall << ',' << r.time.write_stall << ','
       << r.traffic_total << ',' << r.global_read_misses << ','
       << r.global_write_actions << ',' << r.eliminated_acquisitions << ','
       << r.invalidations << ',' << r.false_sharing_misses << ','
       << r.dir_entry_evictions << "\n";
  }
}

void print_json(std::ostream& os, const std::vector<RunResult>& results) {
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    os << "  {\"protocol\":\"" << to_string(r.protocol) << "\""
       << ",\"directory\":\"" << directory_name(r.directory) << "\""
       << ",\"exec_cycles\":" << r.exec_time
       << ",\"busy\":" << r.time.busy
       << ",\"read_stall\":" << r.time.read_stall
       << ",\"write_stall\":" << r.time.write_stall
       << ",\"messages\":" << r.traffic_total
       << ",\"read_misses\":" << r.global_read_misses
       << ",\"write_actions\":" << r.global_write_actions
       << ",\"eliminated\":" << r.eliminated_acquisitions
       << ",\"invalidations\":" << r.invalidations
       << ",\"ls_fraction\":" << r.oracle_total.ls_fraction()
       << ",\"migratory_fraction\":" << r.oracle_total.migratory_fraction()
       << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace

void print_driver_results(std::ostream& os, const DriverOptions& options,
                          const std::vector<RunResult>& results) {
  if (results.empty()) return;
  switch (options.format) {
    case OutputFormat::kText:
      print_text(os, options, results);
      break;
    case OutputFormat::kCsv:
      print_csv(os, results);
      break;
    case OutputFormat::kJson:
      print_json(os, results);
      break;
  }
}

}  // namespace lssim
