// Command-line option parsing for the lssim_run driver.
//
// Kept in the library (rather than the tool binary) so the parsing rules
// are unit-testable. No external dependencies; the grammar is plain
// GNU-style long options:
//
//   lssim_run --workload oltp --protocol ls --procs 4
//             --l1 8k --l2 32k --assoc 2 --block 32
//             --topology ring --consistency pc --seed 7
//             --set txns_per_proc=500 --format csv --compare
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace lssim {

enum class OutputFormat : std::uint8_t { kText, kCsv, kJson };

struct DriverOptions {
  std::string workload = "pingpong";
  std::vector<ProtocolKind> protocols{ProtocolKind::kBaseline};
  bool compare = false;  ///< Run Baseline+AD+LS+ILS side by side.
  /// Directory organisations to sweep (--directory/--directories). The
  /// driver runs the full protocols × directories matrix,
  /// protocol-major, so a single-directory invocation is byte-identical
  /// to the pre-matrix driver.
  std::vector<DirectoryKind> directories{DirectoryKind::kFullMap};
  /// Coherence transports to sweep (--interconnect/--interconnects).
  /// Third, innermost matrix axis: protocols × directories ×
  /// interconnects, so a single-network invocation stays byte-identical
  /// to the pre-seam driver.
  std::vector<InterconnectKind> interconnects{InterconnectKind::kNetwork};
  MachineConfig machine;
  std::uint64_t seed = 1;
  OutputFormat format = OutputFormat::kText;
  /// Free-form workload parameters (--set key=value), interpreted by the
  /// workload factory in driver/runner.cpp.
  std::map<std::string, std::string> params;
  // Telemetry outputs (empty = disabled; "-" = stdout where noted).
  std::string metrics_out;   ///< Metrics snapshots as JSON ("-" ok).
  std::string perfetto_out;  ///< Chrome trace-event / Perfetto JSON.
  std::string manifest_out;  ///< Versioned run manifest JSON.
  std::string latency_out;   ///< Ownership-latency report JSON ("-" ok).
  std::string audit_out;     ///< Tag-decision audit trail JSONL ("-" ok).
  /// Heartbeat JSONL stream ("-" = stderr, so results on stdout stay
  /// machine-parseable).
  std::string heartbeat_out;
  /// Seconds between heartbeat lines (0 = one per completed run).
  double heartbeat_interval = 10.0;
  /// Trace events kept per run; 0 means "default (1M) when --perfetto-out
  /// is set, else tracing off".
  std::size_t trace_capacity = 0;
  /// Audit records kept per run (last-N ring); 0 means "default (1M)
  /// when --audit-out is set, else auditing off".
  std::size_t audit_capacity = 0;
  /// Host worker threads for multi-protocol sweeps (--jobs). 0 = one per
  /// hardware thread. Results are deterministic for any value (see
  /// exec/parallel_executor.hpp).
  int jobs = 0;
  // Capture-once / replay-many (docs/PERFORMANCE.md). Any of these
  // switches the driver from execution-driven runs (the default, and the
  // ground truth for every figure) to trace replay.
  std::string capture_trace_out;  ///< Save the captured trace here.
  std::string replay_from;        ///< Replay a saved trace (else capture).
  bool replay_compare = false;    ///< Drive the matrix from one capture.
  /// Also execute every cell live and assert stat agreement with its
  /// replay (exit 5 on divergence).
  bool replay_crosscheck = false;
  // Discovery flags: print the registered names (one per line, exit 0)
  // and do nothing else — for scripts that build sweep matrices.
  bool list_protocols = false;
  bool list_directories = false;
  bool list_interconnects = false;
  bool show_help = false;

  /// True when any replay-mode option was given.
  [[nodiscard]] bool replay_mode() const noexcept {
    return replay_compare || replay_crosscheck || !replay_from.empty() ||
           !capture_trace_out.empty();
  }

  /// True when any --list-* discovery flag was given.
  [[nodiscard]] bool list_mode() const noexcept {
    return list_protocols || list_directories || list_interconnects;
  }
};

/// Parses argv into `options`. Returns true on success; on failure
/// `error` describes the offending argument.
bool parse_driver_args(int argc, const char* const* argv,
                       DriverOptions* options, std::string* error);

/// "64k" -> 65536, "1m" -> 1048576, "512" -> 512. Returns false on junk.
bool parse_size(const std::string& text, std::uint64_t* out);

/// Protocol name (case-insensitive: baseline/ad/ls/ils) to enum.
bool parse_protocol(const std::string& text, ProtocolKind* out);

/// Topology name (crossbar/ring/mesh) to enum.
bool parse_topology(const std::string& text, Topology* out);

/// Usage text for --help.
[[nodiscard]] std::string driver_usage();

}  // namespace lssim
