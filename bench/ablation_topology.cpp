// Topology sensitivity (extension; the paper's machine is a fixed-delay
// point-to-point network == the crossbar default).
//
// Question: does the LS-vs-AD comparison survive on networks where
// messages traverse several serialising links? Multi-hop topologies
// raise both latency and contention, which *amplifies* the value of the
// messages LS eliminates.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace lssim;

  std::printf("== MP3D across topologies (Baseline of each topology = 100) "
              "==\n");
  std::printf("%-10s %-10s %10s %10s %12s\n", "topology", "protocol",
              "exec", "traffic", "write-stall");
  Mp3dParams params;
  params.particles = 6000;
  params.steps = 6;

  for (int procs : {4, 16}) {
    for (Topology topo :
         {Topology::kCrossbar, Topology::kRing, Topology::kMesh2D}) {
      MachineConfig cfg = MachineConfig::scientific_default(
          ProtocolKind::kBaseline, procs);
      cfg.topology = topo;
      const auto results = bench::run_three(
          cfg, [&](System& sys) { build_mp3d(sys, params); });
      const RunResult& base = results.front();
      for (const auto& r : results) {
        std::printf("%-4dp %-6s %-10s %10.1f %10.1f %12.1f\n", procs,
                    to_string(topo), to_string(r.protocol),
                    normalized(r.exec_time, base.exec_time),
                    normalized(r.traffic_total, base.traffic_total),
                    normalized(r.time.write_stall, base.time.write_stall));
      }
    }
  }
  std::printf("\nExpectation: LS's relative gains grow on multi-hop "
              "networks (each eliminated\nownership transaction saves "
              "several serialised link traversals).\n");
  return 0;
}
