// Table 4: impact of cache block size on the fraction of false-sharing
// misses for OLTP (Dubois classification).
//
// Paper reference points:
//   block  16B: 19.9%   32B: 29.5%   64B: 37.9%   128B: 42.5%  256B: 48.5%
// Trend to reproduce: the false-sharing fraction grows steeply with the
// block size.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace lssim;

  std::printf("== Table 4: false-sharing misses vs block size (OLTP) ==\n");
  std::printf("%-12s %18s %14s %14s\n", "block size", "false sharing %",
              "coh. misses", "data misses");

  for (std::uint32_t block : {16u, 32u, 64u, 128u, 256u}) {
    MachineConfig cfg = bench::oltp_bench_config();
    cfg.l1.block_bytes = block;
    cfg.l2.block_bytes = block;
    cfg.classify_false_sharing = true;
    OltpParams params;
    const RunResult r = run_experiment(
        cfg, [&](System& sys) { build_oltp(sys, params); });
    const double frac =
        r.data_misses == 0
            ? 0.0
            : static_cast<double>(r.false_sharing_misses) /
                  static_cast<double>(r.data_misses);
    std::printf("%-12u %18s %14llu %14llu\n", block, pct(frac).c_str(),
                static_cast<unsigned long long>(r.coherence_misses),
                static_cast<unsigned long long>(r.data_misses));
  }
  std::printf("\npaper: 19.9 / 29.5 / 37.9 / 42.5 / 48.5 %% "
              "for 16/32/64/128/256 B\n");
  return 0;
}
