// Core-structure microbenchmarks (google-benchmark): throughput of the
// simulator's hot paths — cache lookup, directory access, full protocol
// transactions, network sends and the coroutine scheduler.
#include <benchmark/benchmark.h>

#include "lssim.hpp"

namespace {

using namespace lssim;

void BM_CacheLookupHit(benchmark::State& state) {
  Cache cache(CacheConfig{64 * 1024, 2, 32});
  for (Addr b = 0; b < 64 * 1024; b += 32) {
    (void)cache.insert(b, CacheState::kShared);
  }
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(addr & ~Addr{31}));
    addr += 32;
    if (addr >= 32 * 1024) addr = 0;
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  Cache cache(CacheConfig{4 * 1024, 1, 16});
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.insert(addr, CacheState::kShared));
    addr += 16;
  }
}
BENCHMARK(BM_CacheInsertEvict);

void BM_DirectoryEntry(benchmark::State& state) {
  Directory dir;
  Addr block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.entry(block & 0xffff0));
    block += 16;
  }
}
BENCHMARK(BM_DirectoryEntry);

void BM_NetworkSend(benchmark::State& state) {
  Stats stats(4);
  Network net(4, LatencyConfig{}, stats);
  Cycles now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.send(0, 1, MsgType::kReadReq, now));
    now += 50;
  }
}
BENCHMARK(BM_NetworkSend);

void BM_ProtocolL1Hit(benchmark::State& state) {
  MachineConfig cfg = MachineConfig::scientific_default();
  AddressSpace space(cfg.num_nodes, cfg.page_bytes);
  Stats stats(cfg.num_nodes);
  MemorySystem ms(cfg, space, stats);
  AccessRequest req;
  req.op = MemOpKind::kRead;
  req.addr = 64;
  req.size = 4;
  Cycles now = 0;
  (void)ms.access(0, req, now);
  for (auto _ : state) {
    now += 10;
    benchmark::DoNotOptimize(ms.access(0, req, now));
  }
}
BENCHMARK(BM_ProtocolL1Hit);

void BM_ProtocolMigratoryRmw(benchmark::State& state) {
  MachineConfig cfg = MachineConfig::scientific_default(ProtocolKind::kLs);
  AddressSpace space(cfg.num_nodes, cfg.page_bytes);
  Stats stats(cfg.num_nodes);
  MemorySystem ms(cfg, space, stats);
  Cycles now = 0;
  NodeId node = 0;
  for (auto _ : state) {
    AccessRequest req;
    req.addr = 128;
    req.size = 8;
    req.op = MemOpKind::kRead;
    now += 1000;
    (void)ms.access(node, req, now);
    req.op = MemOpKind::kWrite;
    now += 1000;
    benchmark::DoNotOptimize(ms.access(node, req, now));
    node = static_cast<NodeId>((node + 1) & 3);
  }
}
BENCHMARK(BM_ProtocolMigratoryRmw);

void BM_SchedulerPingPong(benchmark::State& state) {
  // Whole-stack throughput: accesses per second through coroutines,
  // scheduler, protocol and stats.
  for (auto _ : state) {
    MachineConfig cfg = MachineConfig::scientific_default(ProtocolKind::kLs);
    System sys(cfg);
    build_pingpong(sys, PingPongParams{.rounds = 500, .counters = 2});
    sys.run();
    benchmark::DoNotOptimize(sys.exec_time());
  }
  state.SetItemsProcessed(state.iterations() * 500 * 2 * 4 * 2);
}
BENCHMARK(BM_SchedulerPingPong)->Unit(benchmark::kMillisecond);

void BM_WordMask(benchmark::State& state) {
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(word_mask_of(addr, 8, 256, 4));
    addr = (addr + 12) & 255;
  }
}
BENCHMARK(BM_WordMask);

}  // namespace
