// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/parallel_executor.hpp"
#include "lssim.hpp"

namespace lssim::bench {

inline constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs};

/// Every figure binary accepts `--jobs N` (0 = all cores): the per-
/// protocol runs are independent, deterministic simulations, so fanning
/// them out changes wall clock only, never a reported number. Default is
/// serial to keep single-figure timings comparable across machines.
inline int parse_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      return std::atoi(argv[i + 1]);
    }
  }
  return 1;
}

/// True when `flag` (e.g. "--replay") appears anywhere on the command
/// line.
inline bool parse_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// OLTP bench configuration: the paper's cache organization (2-way L1,
/// DM L2, 32-byte blocks) with capacities scaled down 8x alongside the
/// ~100x-miniaturized workload, preserving the paper's miss regime (many
/// capacity/conflict misses to shared data; hand-offs whose previous
/// copy is evicted). See DESIGN.md "Substitutions" and EXPERIMENTS.md.
inline MachineConfig oltp_bench_config(
    ProtocolKind kind = ProtocolKind::kBaseline) {
  MachineConfig cfg = MachineConfig::oltp_default(kind);
  cfg.l1 = CacheConfig{8 * 1024, 2, 32};
  cfg.l2 = CacheConfig{32 * 1024, 1, 32};
  return cfg;
}

/// Runs `build` under Baseline, AD and LS with the given base config,
/// across up to `jobs` host threads (results always in protocol order).
inline std::vector<RunResult> run_three(MachineConfig cfg,
                                        const WorkloadBuilder& build,
                                        int jobs = 1) {
  return run_experiments(cfg, build, kAllProtocols, /*seed=*/1, jobs);
}

/// As run_three, but capture-once / replay-many: the workload executes
/// once (under cfg's own protocol) and the three protocol results come
/// from replaying the captured access stream. Exact for
/// feedback-insensitive workloads; the figure binaries keep
/// execution-driven runs as the default and print a note when this mode
/// is active (see docs/PERFORMANCE.md).
inline std::vector<RunResult> run_three_replayed(MachineConfig cfg,
                                                 const WorkloadBuilder& build,
                                                 int jobs = 1) {
  const CapturedTrace captured = capture_trace(cfg, build, /*seed=*/1);
  const ReplayCompareEngine engine(captured.trace, cfg);
  return engine.replay_matrix(kAllProtocols, {}, jobs);
}

inline void print_summary_line(const RunResult& base, const RunResult& r) {
  std::printf(
      "  %-8s exec %6.1f  traffic %6.1f  write-stall %6.1f  "
      "read-misses %6.1f\n",
      to_string(r.protocol),
      normalized(r.exec_time, base.exec_time),
      normalized(r.traffic_total, base.traffic_total),
      normalized(r.time.write_stall, base.time.write_stall),
      normalized(r.global_read_misses, base.global_read_misses));
}

inline void print_summary(const std::vector<RunResult>& results) {
  std::printf("-- Summary (Baseline = 100) --\n");
  for (const auto& r : results) {
    print_summary_line(results.front(), r);
  }
  std::printf("\n");
}

}  // namespace lssim::bench
