// perf_baseline — times the full figure suite (fig3–fig7 plus the §5.5
// ablation matrix) and emits a machine-readable BENCH_results.json, the
// repo's perf-trajectory data point. For every figure it measures the
// serial wall clock per simulation, then re-runs the whole suite fanned
// out across --jobs host threads and cross-checks that every run's
// exec-cycle count is identical — the determinism guarantee of
// exec/parallel_executor.hpp, enforced on every baseline capture.
//
//   perf_baseline [--jobs N] [--out FILE] [--quick] [--reps N]
//                 [--note TEXT]...
//
//   --jobs N   worker threads for the parallel pass (default: all cores)
//   --out F    output path (default BENCH_results.json; "-" = stdout)
//   --quick    CI-sized workloads (~seconds instead of minutes)
//   --reps N   repetitions of each replay-compare sweep; the minimum
//              wall clock per side is recorded (default 3 — shared
//              hosts jitter individual passes by tens of percent)
//   --note T   append a provenance note to the document (repeatable) —
//              e.g. a measured comparison against an older build
//
// It also measures the capture-once / replay-many engine: per workload,
// a full registered-protocol sweep executed live vs replayed from one
// captured trace (the `replay_compare` array in the JSON), gated on the
// same-protocol replay being bit-identical to its live execution.
//
// Compare two baselines with tools/bench_compare.py. Exit codes: 0 ok,
// 1 determinism violation (parallel != serial cycles) or replay
// disagreement, 3 output failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "telemetry/json.hpp"

namespace {

using namespace lssim;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// HEAD commit of the working tree the benchmark ran from, for the
/// baseline's provenance fields ("unknown" outside a git checkout —
/// tools/bench_compare.py warns when comparing across commits).
std::string git_commit() {
  std::string commit = "unknown";
  if (FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (line.size() == 40 &&
          line.find_first_not_of("0123456789abcdef") == std::string::npos) {
        commit = line;
      }
    }
    pclose(pipe);
  }
  return commit;
}

/// One independent simulation of the suite.
struct RunSpec {
  std::string figure;
  std::string label;
  MachineConfig cfg;
  WorkloadBuilder build;
};

/// §5.5 protocol variants, as in ablation_variations.cpp.
struct VariantSpec {
  const char* name;
  ProtocolKind kind;
  bool default_tagged = false;
  bool keep_tag_on_lone_write = false;
  std::uint8_t tag_hyst = 1;
  std::uint8_t detag_hyst = 1;
};

constexpr VariantSpec kAblationVariants[] = {
    {"Baseline", ProtocolKind::kBaseline},
    {"LS", ProtocolKind::kLs},
    {"LS+default-tag", ProtocolKind::kLs, true},
    {"LS+keep-lone", ProtocolKind::kLs, false, true},
    {"LS+tag-hyst2", ProtocolKind::kLs, false, false, 2, 1},
    {"LS+detag-hyst2", ProtocolKind::kLs, false, false, 1, 2},
    {"AD", ProtocolKind::kAd},
    {"AD+default-tag", ProtocolKind::kAd, true},
    {"LS+AD", ProtocolKind::kLsAd},
    {"LS+AD+keep-lone", ProtocolKind::kLsAd, false, true},
};

void add_protocol_sweep(std::vector<RunSpec>* suite, const char* figure,
                        const MachineConfig& cfg,
                        const WorkloadBuilder& build) {
  for (ProtocolKind kind : bench::kAllProtocols) {
    MachineConfig run_cfg = cfg;
    run_cfg.protocol.kind = kind;
    suite->push_back(RunSpec{figure, to_string(kind), run_cfg, build});
  }
}

void add_ablations(std::vector<RunSpec>* suite, const char* figure,
                   const MachineConfig& cfg, const WorkloadBuilder& build) {
  for (const VariantSpec& v : kAblationVariants) {
    MachineConfig run_cfg = cfg;
    run_cfg.protocol = ProtocolConfig{};
    run_cfg.protocol.kind = v.kind;
    run_cfg.protocol.default_tagged = v.default_tagged;
    run_cfg.protocol.keep_tag_on_lone_write = v.keep_tag_on_lone_write;
    run_cfg.protocol.tag_hysteresis = v.tag_hyst;
    run_cfg.protocol.detag_hysteresis = v.detag_hyst;
    suite->push_back(RunSpec{figure, v.name, run_cfg, build});
  }
}

std::vector<RunSpec> build_suite(bool quick) {
  std::vector<RunSpec> suite;

  Mp3dParams mp3d;
  if (quick) {
    mp3d.particles = 2000;
    mp3d.steps = 3;
  }
  add_protocol_sweep(&suite, "fig3_mp3d",
                     MachineConfig::scientific_default(),
                     [mp3d](System& sys) { build_mp3d(sys, mp3d); });

  CholeskyParams chol;
  if (quick) {
    chol.n = 200;
    chol.bandwidth = 32;
  }
  add_protocol_sweep(&suite, "fig4_cholesky",
                     MachineConfig::scientific_default(),
                     [chol](System& sys) { build_cholesky(sys, chol); });

  for (int procs : quick ? std::vector<int>{4, 8}
                         : std::vector<int>{4, 16, 32}) {
    CholeskyParams p;
    p.n = quick ? 200 : 600;
    p.bandwidth = quick ? 32 : 64;
    add_protocol_sweep(
        &suite,
        ("fig5_cholesky_" + std::to_string(procs) + "p").c_str(),
        MachineConfig::scientific_default(ProtocolKind::kBaseline, procs),
        [p](System& sys) { build_cholesky(sys, p); });
  }

  LuParams lu;
  if (quick) {
    lu.n = 96;
  }
  add_protocol_sweep(&suite, "fig6_lu", MachineConfig::scientific_default(),
                     [lu](System& sys) { build_lu(sys, lu); });

  OltpParams oltp;
  if (quick) {
    oltp.txns_per_proc = 300;
  }
  add_protocol_sweep(&suite, "fig7_oltp", bench::oltp_bench_config(),
                     [oltp](System& sys) { build_oltp(sys, oltp); });

  Mp3dParams mp3d_abl;
  mp3d_abl.particles = quick ? 2000 : 4000;
  mp3d_abl.steps = quick ? 3 : 6;
  add_ablations(&suite, "ablation_mp3d", MachineConfig::scientific_default(),
                [mp3d_abl](System& sys) { build_mp3d(sys, mp3d_abl); });

  OltpParams oltp_abl;
  oltp_abl.txns_per_proc = quick ? 300 : 1200;
  add_ablations(&suite, "ablation_oltp", bench::oltp_bench_config(),
                [oltp_abl](System& sys) { build_oltp(sys, oltp_abl); });

  return suite;
}

struct RunTiming {
  double seconds = 0.0;
  RunResult result;
};

/// One workload for the capture-once / replay-many measurement: a full
/// registered-protocol sweep executed live vs driven from one captured
/// trace (same sizes as the corresponding figure entries above).
struct ReplaySpec {
  const char* name;
  MachineConfig cfg;
  WorkloadBuilder build;
};

std::vector<ReplaySpec> build_replay_suite(bool quick) {
  std::vector<ReplaySpec> suite;

  Mp3dParams mp3d;
  if (quick) {
    mp3d.particles = 2000;
    mp3d.steps = 3;
  }
  suite.push_back({"fig3_mp3d", MachineConfig::scientific_default(),
                   [mp3d](System& sys) { build_mp3d(sys, mp3d); }});

  LuParams lu;
  if (quick) {
    lu.n = 96;
  }
  suite.push_back({"fig6_lu", MachineConfig::scientific_default(),
                   [lu](System& sys) { build_lu(sys, lu); }});

  OltpParams oltp;
  if (quick) {
    oltp.txns_per_proc = 300;
  }
  suite.push_back({"fig7_oltp", bench::oltp_bench_config(),
                   [oltp](System& sys) { build_oltp(sys, oltp); }});

  return suite;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lssim;

  int jobs = default_jobs();
  std::string out_path = "BENCH_results.json";
  bool quick = false;
  int reps = 3;
  std::vector<std::string> notes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--note") == 0 && i + 1 < argc) {
      notes.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_baseline [--jobs N] [--out FILE] [--quick] "
                   "[--reps N] [--note TEXT]...\n");
      return 2;
    }
  }
  if (jobs <= 0) {
    jobs = default_jobs();
  }
  if (reps <= 0) {
    reps = 1;
  }

  const std::vector<RunSpec> suite = build_suite(quick);
  std::fprintf(stderr, "perf_baseline: %zu simulations, parallel pass at "
               "--jobs %d%s\n", suite.size(), jobs, quick ? " (quick)" : "");
  // Serial pass: per-run wall clock, one simulation at a time.
  std::vector<RunTiming> serial(suite.size());
  const auto serial_start = Clock::now();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto start = Clock::now();
    serial[i].result =
        run_experiment(suite[i].cfg, suite[i].build, /*seed=*/1);
    serial[i].seconds = seconds_since(start);
  }
  const double serial_seconds = seconds_since(serial_start);

  // Parallel pass: the whole suite fanned out across `jobs` threads.
  const auto parallel_start = Clock::now();
  const std::vector<RunResult> parallel = parallel_map<RunResult>(
      suite.size(), jobs, [&suite](std::size_t i) {
        return run_experiment(suite[i].cfg, suite[i].build, /*seed=*/1);
      });
  const double parallel_seconds = seconds_since(parallel_start);

  // Determinism cross-check: a parallel run must not change one cycle.
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (parallel[i].exec_time != serial[i].result.exec_time ||
        parallel[i].traffic_total != serial[i].result.traffic_total) {
      std::fprintf(stderr,
                   "perf_baseline: DETERMINISM VIOLATION in %s/%s: "
                   "serial %llu cycles, parallel %llu cycles\n",
                   suite[i].figure.c_str(), suite[i].label.c_str(),
                   static_cast<unsigned long long>(serial[i].result.exec_time),
                   static_cast<unsigned long long>(parallel[i].exec_time));
      return 1;
    }
  }

  // Capture-once / replay-many pass (docs/PERFORMANCE.md): per workload,
  // time a full registered-protocol sweep executed live, then the same
  // sweep driven from one captured access stream, and gate on the
  // same-protocol replay being bit-identical to its live execution.
  //
  // Accounting: `speedup` is execute-sweep over replay-sweep wall clock —
  // the steady-state ratio of the capture-once / replay-many workflow,
  // where one capture (recorded separately as capture_seconds) serves
  // every later sweep. `speedup_with_capture` folds the capture into the
  // replay side: the ratio for a one-shot compare that starts from
  // nothing. Each sweep runs `reps` times and the minimum per side is
  // kept — wall-clock minima are the standard noise filter on shared
  // hosts, and both sides get the same treatment.
  const std::vector<ProtocolKind> all_kinds = all_protocol_kinds();
  Json::Array replay_docs;
  for (const ReplaySpec& spec : build_replay_suite(quick)) {
    const auto capture_start = Clock::now();
    const CapturedTrace captured =
        capture_trace(spec.cfg, spec.build, /*seed=*/1, spec.name);
    const double capture_seconds = seconds_since(capture_start);

    const ReplayCompareEngine engine(captured.trace, spec.cfg);
    double execute_seconds = 0.0;
    double replay_seconds = 0.0;
    std::vector<RunResult> replayed;
    for (int rep = 0; rep < reps; ++rep) {
      const auto exec_start = Clock::now();
      for (ProtocolKind kind : all_kinds) {
        MachineConfig cfg = spec.cfg;
        cfg.protocol.kind = kind;
        const RunResult r = run_experiment(cfg, spec.build, /*seed=*/1);
        (void)r;
      }
      const double exec_pass = seconds_since(exec_start);

      const auto replay_start = Clock::now();
      std::vector<RunResult> pass;
      pass.reserve(all_kinds.size());
      for (ProtocolKind kind : all_kinds) {
        pass.push_back(engine.replay(kind));
      }
      const double replay_pass = seconds_since(replay_start);

      if (rep == 0) {
        execute_seconds = exec_pass;
        replay_seconds = replay_pass;
        replayed = std::move(pass);
      } else {
        execute_seconds = std::min(execute_seconds, exec_pass);
        replay_seconds = std::min(replay_seconds, replay_pass);
      }
    }

    // Same-protocol replay must reproduce the captured run exactly.
    const auto base_it = std::find(all_kinds.begin(), all_kinds.end(),
                                   spec.cfg.protocol.kind);
    const std::size_t base_idx =
        static_cast<std::size_t>(base_it - all_kinds.begin());
    const std::vector<std::string> diffs =
        compare_replay(captured.executed, replayed[base_idx]);
    if (!diffs.empty()) {
      std::fprintf(stderr,
                   "perf_baseline: REPLAY DISAGREEMENT in %s (%s):\n",
                   spec.name, to_string(spec.cfg.protocol.kind));
      for (const std::string& diff : diffs) {
        std::fprintf(stderr, "perf_baseline:   %s\n", diff.c_str());
      }
      return 1;
    }

    Json::Object entry;
    entry.emplace_back("name", Json(std::string(spec.name)));
    entry.emplace_back("protocols", Json(all_kinds.size()));
    entry.emplace_back("reps", Json(static_cast<std::uint64_t>(reps)));
    entry.emplace_back("execute_seconds", Json(execute_seconds));
    entry.emplace_back("capture_seconds", Json(capture_seconds));
    entry.emplace_back("replay_seconds", Json(replay_seconds));
    entry.emplace_back(
        "speedup",
        Json(replay_seconds > 0 ? execute_seconds / replay_seconds : 0.0));
    entry.emplace_back(
        "speedup_with_capture",
        Json(capture_seconds + replay_seconds > 0
                 ? execute_seconds / (capture_seconds + replay_seconds)
                 : 0.0));
    entry.emplace_back("agree", Json(true));
    std::fprintf(stderr,
                 "perf_baseline: replay_compare %s: execute %.2fs, "
                 "capture %.2fs, replay %.2fs (speedup %.2fx)\n",
                 spec.name, execute_seconds, capture_seconds, replay_seconds,
                 replay_seconds > 0 ? execute_seconds / replay_seconds : 0.0);
    replay_docs.emplace_back(std::move(entry));
  }

  // Aggregate per figure, preserving suite order.
  Json::Array figures;
  std::vector<std::string> figure_order;
  for (const RunSpec& spec : suite) {
    if (figure_order.empty() || figure_order.back() != spec.figure) {
      figure_order.push_back(spec.figure);
    }
  }
  for (const std::string& name : figure_order) {
    double fig_seconds = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t accesses = 0;
    int runs = 0;
    Json::Array run_docs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      if (suite[i].figure != name) continue;
      fig_seconds += serial[i].seconds;
      cycles += serial[i].result.exec_time;
      accesses += serial[i].result.accesses;
      runs += 1;
      Json::Object run_doc;
      run_doc.emplace_back("label", Json(suite[i].label));
      run_doc.emplace_back("seconds", Json(serial[i].seconds));
      run_doc.emplace_back("exec_cycles", Json(serial[i].result.exec_time));
      run_doc.emplace_back("accesses", Json(serial[i].result.accesses));
      run_docs.emplace_back(std::move(run_doc));
    }
    Json::Object fig;
    fig.emplace_back("name", Json(name));
    fig.emplace_back("runs", Json(runs));
    fig.emplace_back("serial_seconds", Json(fig_seconds));
    fig.emplace_back("sims_per_second",
                     Json(fig_seconds > 0 ? runs / fig_seconds : 0.0));
    fig.emplace_back(
        "simulated_cycles_per_second",
        Json(fig_seconds > 0 ? static_cast<double>(cycles) / fig_seconds
                             : 0.0));
    fig.emplace_back(
        "accesses_per_second",
        Json(fig_seconds > 0 ? static_cast<double>(accesses) / fig_seconds
                             : 0.0));
    fig.emplace_back("results", Json(std::move(run_docs)));
    figures.emplace_back(std::move(fig));
  }

  Json::Object doc;
  doc.emplace_back("schema_version", Json(std::uint64_t{1}));
  doc.emplace_back("generator", Json("lssim perf_baseline"));
  // Build/config provenance (pure additions; absent in older captures).
  // The suite runs the paper's machine: the directory and interconnect
  // fields record the organisation and transport every entry used.
  doc.emplace_back("git_commit", Json(git_commit()));
  {
    const MachineConfig suite_cfg = MachineConfig::scientific_default();
    doc.emplace_back("directory",
                     Json(directory_name(suite_cfg.directory_scheme)));
    doc.emplace_back("interconnect",
                     Json(interconnect_name(suite_cfg.interconnect)));
  }
  doc.emplace_back("quick", Json(quick));
  doc.emplace_back("jobs", Json(jobs));
  doc.emplace_back("host_hardware_concurrency", Json(default_jobs()));
  doc.emplace_back("total_simulations", Json(suite.size()));
  doc.emplace_back("serial_seconds", Json(serial_seconds));
  doc.emplace_back("parallel_seconds", Json(parallel_seconds));
  // With one core (or one worker) the parallel pass can only time-slice
  // the serial work, so serial/parallel measures executor overhead, not
  // parallel gain — recording it as a speedup would archive numbers like
  // 0.92x that later reads as a regression. Write null instead;
  // bench_compare.py skips speedup comparison when either side is null.
  const bool speedup_meaningful = default_jobs() > 1 && jobs > 1;
  if (!speedup_meaningful) {
    notes.emplace_back(
        "speedup is null: the parallel pass ran without real concurrency "
        "(1-core host or --jobs 1), which measures executor overhead");
  }
  doc.emplace_back(
      "speedup",
      speedup_meaningful && parallel_seconds > 0
          ? Json(serial_seconds / parallel_seconds)
          : Json(nullptr));
  doc.emplace_back(
      "sims_per_second_serial",
      Json(serial_seconds > 0 ? suite.size() / serial_seconds : 0.0));
  doc.emplace_back(
      "sims_per_second_parallel",
      Json(parallel_seconds > 0 ? suite.size() / parallel_seconds : 0.0));
  if (!notes.empty()) {
    Json::Array note_docs;
    for (std::string& note : notes) {
      note_docs.emplace_back(Json(std::move(note)));
    }
    doc.emplace_back("notes", Json(std::move(note_docs)));
  }
  doc.emplace_back("replay_compare", Json(std::move(replay_docs)));
  doc.emplace_back("figures", Json(std::move(figures)));
  const Json json{std::move(doc)};

  const bool to_stdout = out_path == "-";
  std::ofstream file;
  if (!to_stdout) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "perf_baseline: cannot open %s\n",
                   out_path.c_str());
      return 3;
    }
  }
  std::ostream& os = to_stdout ? std::cout : file;
  json.write(os, 2);
  os << "\n";
  os.flush();
  if (!os) {
    std::fprintf(stderr, "perf_baseline: failed writing %s\n",
                 out_path.c_str());
    return 3;
  }

  char speedup_text[32] = "n/a";
  if (speedup_meaningful && parallel_seconds > 0) {
    std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx",
                  serial_seconds / parallel_seconds);
  }
  std::fprintf(stderr,
               "perf_baseline: serial %.2fs, parallel %.2fs at --jobs %d "
               "(speedup %s) -> %s\n",
               serial_seconds, parallel_seconds, jobs, speedup_text,
               to_stdout ? "stdout" : out_path.c_str());
  return 0;
}
