// Directory-organisation ablation (extension): full-map (the paper's
// machine) vs limited-pointer Dir_iB at 4 and 16 pointers.
//
// Two effects to observe at larger processor counts:
//  1. broadcast invalidations inflate write-related traffic for every
//     protocol once read-sharing overflows the pointers;
//  2. overflow destroys AD's precise-sharer evidence, while LS's
//     last-reader field is pointer-free — LS's advantage grows.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace lssim;

  CholeskyParams params;
  params.n = 400;
  params.bandwidth = 64;

  std::printf("== Cholesky @16p across directory schemes "
              "(full-map Baseline = 100) ==\n");
  std::printf("%-14s %-10s %10s %10s %12s\n", "directory", "protocol",
              "exec", "traffic", "invalidations");

  MachineConfig base_cfg =
      MachineConfig::scientific_default(ProtocolKind::kBaseline, 16);
  const RunResult reference = run_experiment(
      base_cfg, [&](System& sys) { build_cholesky(sys, params); });

  struct Scheme {
    const char* name;
    DirectoryScheme scheme;
    std::uint8_t pointers;
  };
  const Scheme schemes[] = {
      {"full-map", DirectoryScheme::kFullMap, 0},
      {"dir4B", DirectoryScheme::kLimitedPtr, 4},
      {"dir2B", DirectoryScheme::kLimitedPtr, 2},
  };

  for (const Scheme& s : schemes) {
    for (ProtocolKind kind :
         {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
      MachineConfig cfg = base_cfg;
      cfg.directory_scheme = s.scheme;
      cfg.directory_pointers = s.pointers;
      cfg.protocol.kind = kind;
      const RunResult r = run_experiment(
          cfg, [&](System& sys) { build_cholesky(sys, params); });
      std::printf("%-14s %-10s %10.1f %10.1f %12.1f\n", s.name,
                  to_string(kind),
                  normalized(r.exec_time, reference.exec_time),
                  normalized(r.traffic_total, reference.traffic_total),
                  normalized(r.invalidations, reference.invalidations));
    }
  }
  std::printf("\nfull-map is the paper's organisation; Dir_iB broadcasts "
              "on overflow and\nblinds migratory detection, widening LS's "
              "edge over AD.\n");
  return 0;
}
