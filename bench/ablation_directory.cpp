// Directory-organisation ablation (extension): full-map (the paper's
// machine) vs limited-pointer Dir_iB, a coarse bit-vector and a sparse
// directory cache.
//
// Effects to observe at larger processor counts:
//  1. broadcast (Dir_iB overflow) and region-granular (coarse)
//     invalidations inflate write-related traffic for every protocol
//     once read-sharing exceeds what the organisation tracks precisely;
//  2. imprecision destroys AD's precise-sharer evidence, while LS's
//     last-reader field is pointer-free — LS's advantage grows;
//  3. a bounded directory cache adds eviction-forced invalidations on
//     top, visible in the evictions column.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace lssim;

  CholeskyParams params;
  params.n = 400;
  params.bandwidth = 64;

  std::printf("== Cholesky @16p across directory schemes "
              "(full-map Baseline = 100) ==\n");
  std::printf("%-14s %-10s %10s %10s %12s\n", "directory", "protocol",
              "exec", "traffic", "invalidations");

  MachineConfig base_cfg =
      MachineConfig::scientific_default(ProtocolKind::kBaseline, 16);
  const RunResult reference = run_experiment(
      base_cfg, [&](System& sys) { build_cholesky(sys, params); });

  struct Scheme {
    const char* name;
    DirectoryKind kind;
    std::uint8_t pointers;
    std::uint16_t region;
    std::uint32_t entries;
  };
  const Scheme schemes[] = {
      {"full-map", DirectoryKind::kFullMap, 4, 0, 0},
      {"dir4B", DirectoryKind::kLimitedPtr, 4, 0, 0},
      {"dir2B", DirectoryKind::kLimitedPtr, 2, 0, 0},
      {"coarse4", DirectoryKind::kCoarseVector, 4, 4, 0},
      {"sparse256", DirectoryKind::kSparse, 4, 0, 256},
  };

  std::uint64_t sparse_evictions = 0;
  for (const Scheme& s : schemes) {
    for (ProtocolKind kind :
         {ProtocolKind::kBaseline, ProtocolKind::kAd, ProtocolKind::kLs}) {
      MachineConfig cfg = base_cfg;
      cfg.directory_scheme = s.kind;
      cfg.directory_pointers = s.pointers;
      cfg.directory_region = s.region;
      cfg.directory_entries = s.entries;
      cfg.protocol.kind = kind;
      const RunResult r = run_experiment(
          cfg, [&](System& sys) { build_cholesky(sys, params); });
      std::printf("%-14s %-10s %10.1f %10.1f %12.1f\n", s.name,
                  to_string(kind),
                  normalized(r.exec_time, reference.exec_time),
                  normalized(r.traffic_total, reference.traffic_total),
                  normalized(r.invalidations, reference.invalidations));
      if (s.kind == DirectoryKind::kSparse && kind == ProtocolKind::kLs) {
        sparse_evictions = r.dir_entry_evictions;
      }
    }
  }
  std::printf("\nfull-map is the paper's organisation; Dir_iB broadcasts "
              "on overflow and\nblinds migratory detection, widening LS's "
              "edge over AD. coarse4 invalidates\n4-node regions; "
              "sparse256 (LS run: %llu entry evictions) forces\n"
              "invalidations whenever its 256-entry cache overflows.\n",
              static_cast<unsigned long long>(sparse_evictions));
  return 0;
}
