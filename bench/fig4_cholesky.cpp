// Figure 4: Behavior of Cholesky at 4 processors.
//
// Paper reference points (normalized to Baseline = 100):
//   execution time: Baseline 100, AD 100, LS 69/70 (−30%)
//   traffic:        Baseline 100, AD 100, LS ~89 write-related −89%
//   read misses:    Baseline 100, AD ~100, LS ~98
// The signature result: AD removes essentially nothing at 4 processors
// (no migratory data), LS removes almost all ownership overhead.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  const int jobs = bench::parse_jobs(argc, argv);
  const bool replay = bench::parse_flag(argc, argv, "--replay");
  CholeskyParams params;  // n=600, bandwidth=64: footprint 300 kB >> L2.
  const MachineConfig cfg = MachineConfig::scientific_default();

  const auto build = [&](System& sys) { build_cholesky(sys, params); };
  const auto results = replay ? bench::run_three_replayed(cfg, build, jobs)
                              : bench::run_three(cfg, build, jobs);

  if (replay) {
    std::printf("note: --replay — protocols driven by one captured access "
                "stream (docs/PERFORMANCE.md)\n");
  }
  print_behavior_figure(std::cout, "Cholesky (Figure 4)", results);
  bench::print_summary(results);
  std::printf("paper: exec 100/100/69, AD removes ~nothing at 4p, "
              "LS write traffic -89%%\n");
  return 0;
}
