// Figure-5-style sweep past the 64-node full-map ceiling: invalidation
// traffic for a read-mostly workload at 64, 128 and 256 processors under
// the limited-pointer (Dir_4B) and coarse bit-vector organisations,
// with full-map as the 64-node anchor.
//
// What to observe:
//  * at 64 nodes all three organisations exist; Dir_4B already
//    broadcasts (the sharer population far exceeds 4 pointers) and the
//    coarse vector invalidates whole regions, so both inflate
//    invalidation counts over the exact full-map;
//  * at 128/256 nodes full-map is impossible (one bit per node no
//    longer fits the 64-bit sharer word); the two compact organisations
//    keep running and their imprecision cost scales with the region
//    size (nodes/64 for the auto region) and the broadcast radius;
//  * LS needs no sharer-set precision for its last-reader evidence, so
//    its relative advantage over AD survives the organisation change.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  const int jobs = bench::parse_jobs(argc, argv);

  ReadMostlyParams params;
  params.words = 512;
  params.rounds = 60;

  struct Org {
    const char* name;
    DirectoryKind kind;
    int max_nodes;  // full-map stops at 64
  };
  const Org orgs[] = {
      {"full-map", DirectoryKind::kFullMap, 64},
      {"dir4B", DirectoryKind::kLimitedPtr, 256},
      {"coarse", DirectoryKind::kCoarseVector, 256},
  };

  for (int procs : {64, 128, 256}) {
    for (const Org& org : orgs) {
      if (procs > org.max_nodes) continue;
      MachineConfig cfg =
          MachineConfig::scientific_default(ProtocolKind::kBaseline, procs);
      cfg.directory_scheme = org.kind;
      cfg.directory_pointers = 4;
      cfg.directory_region = 0;  // auto: ceil(procs / 64) nodes per bit

      std::vector<RunResult> results = bench::run_three(
          cfg, [&](System& sys) { build_read_mostly(sys, params); }, jobs);
      std::vector<std::string> labels;
      for (ProtocolKind kind : bench::kAllProtocols) {
        labels.push_back(std::string(to_string(kind)) + "-" +
                         std::to_string(procs) + "@" + org.name);
      }
      print_invalidation_figure(
          std::cout,
          "ReadMostly @" + std::to_string(procs) + "p " + org.name,
          results, labels);
      std::printf("\n");
    }
  }
  std::printf("full-map ends at 64 nodes; dir4B and coarse carry the same "
              "protocols to 256.\n");
  return 0;
}
