// Figure 7: Behavior of OLTP (TPC-B-style, 40 branches).
//
// Paper reference points (normalized to Baseline = 100):
//   execution time: Baseline 100, AD 95, LS 87 (−13%)
//   traffic:        Baseline 100, AD 94, LS 85 (−15%)
//   read misses:    Baseline 100, AD ~100, LS 108 (+8%)
//   ~1.4 invalidations per write to shared blocks; busy time drops too
//   (less time in critical sections).
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  const int jobs = bench::parse_jobs(argc, argv);
  const bool replay = bench::parse_flag(argc, argv, "--replay");
  OltpParams params;  // 40 branches (paper configuration).
  const MachineConfig cfg = bench::oltp_bench_config();

  const auto build = [&](System& sys) { build_oltp(sys, params); };
  const auto results = replay ? bench::run_three_replayed(cfg, build, jobs)
                              : bench::run_three(cfg, build, jobs);

  if (replay) {
    std::printf("note: --replay — protocols driven by one captured access "
                "stream (docs/PERFORMANCE.md)\n");
  }
  print_behavior_figure(std::cout, "OLTP (Figure 7)", results);
  bench::print_summary(results);
  std::printf("baseline invalidations per global write: %.2f "
              "(paper: ~1.4)\n",
              results[0].invalidations_per_write());
  std::printf("paper: exec 100/95/87, traffic 100/94/85, "
              "read misses 100/100/108\n");
  return 0;
}
