// Extension: data-centric LS vs instruction-centric prediction (ILS).
//
// The paper's §6 argues (citing the authors' ICPP'99 study) that
// instruction-centric techniques have difficulty with OLTP: the same
// static load site touches both private/migratory data (predict
// exclusive!) and read-shared data (don't!), so per-site predictors
// oscillate, while the data-centric LS bit adapts per memory block.
// This bench quantifies that contrast on our workloads.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace lssim;

void compare(const char* name, MachineConfig cfg,
             const WorkloadBuilder& build) {
  std::printf("== %s (Baseline = 100) ==\n", name);
  std::printf("%-10s %10s %10s %12s %12s %12s\n", "protocol", "exec",
              "traffic", "write-stall", "read-misses", "eliminated");
  RunResult base;
  for (ProtocolKind kind : {ProtocolKind::kBaseline, ProtocolKind::kAd,
                            ProtocolKind::kLs, ProtocolKind::kIls}) {
    cfg.protocol.kind = kind;
    const RunResult r = run_experiment(cfg, build);
    if (kind == ProtocolKind::kBaseline) base = r;
    std::printf("%-10s %10.1f %10.1f %12.1f %12.1f %12llu\n",
                to_string(kind),
                normalized(r.exec_time, base.exec_time),
                normalized(r.traffic_total, base.traffic_total),
                normalized(r.time.write_stall, base.time.write_stall),
                normalized(r.global_read_misses, base.global_read_misses),
                static_cast<unsigned long long>(r.eliminated_acquisitions));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lssim;

  // Regular scientific code: stable sites, ILS competitive with LS.
  LuParams lu;
  lu.n = 128;
  compare("LU 128x128 (regular access sites)",
          MachineConfig::scientific_default(),
          [=](System& sys) { build_lu(sys, lu); });

  // OLTP: polymorphic sites; ILS trails the data-centric LS.
  OltpParams oltp;
  oltp.txns_per_proc = 1500;
  compare("OLTP (polymorphic access sites)", bench::oltp_bench_config(),
          [=](System& sys) { build_oltp(sys, oltp); });

  std::printf(
      "Context (paper §6 / ICPP'99): on full-size OLTP, instruction-centric\n"
      "prediction loses to the data-centric LS bit because shared access\n"
      "routines serve private and read-shared data from one PC. On this\n"
      "miniaturized recreation the idealized (unbounded-table) ILS stays\n"
      "competitive — its predicted-exclusive lookups rarely collide — but\n"
      "its signature cost is visible as the read-miss inflation above.\n");
  return 0;
}
