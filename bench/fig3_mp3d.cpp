// Figure 3: Behavior of MP3D — execution time, network traffic and global
// read misses for Baseline / AD / LS.
//
// Paper reference points (normalized to Baseline = 100):
//   execution time: Baseline 100, AD 83, LS 77
//   traffic:        Baseline 100, AD 83, LS 76
//   read misses:    Baseline 100, AD 104, LS 105
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  const int jobs = bench::parse_jobs(argc, argv);
  const bool replay = bench::parse_flag(argc, argv, "--replay");
  Mp3dParams params;  // 10k particles, 10 steps (paper configuration).
  const MachineConfig cfg = MachineConfig::scientific_default();

  const auto build = [&](System& sys) { build_mp3d(sys, params); };
  const auto results = replay ? bench::run_three_replayed(cfg, build, jobs)
                              : bench::run_three(cfg, build, jobs);

  if (replay) {
    std::printf("note: --replay — protocols driven by one captured access "
                "stream (docs/PERFORMANCE.md)\n");
  }
  print_behavior_figure(std::cout, "MP3D (Figure 3)", results);
  bench::print_summary(results);
  std::printf("paper: exec 100/83/77, traffic 100/83/76, "
              "read misses 100/104/105\n");
  return 0;
}
