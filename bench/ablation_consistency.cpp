// §6-discussion ablation: how much of LS's win survives under a relaxed
// memory model?
//
// The paper (conservative SC implementation) predicts: "Under more
// relaxed memory models, this reduction of write stall time is probably
// reduced ... Our technique however has a potential to reduce network
// traffic under any memory model." This bench runs MP3D and OLTP under
// sequential consistency and under processor consistency (8-deep write
// buffer) and reports the execution-time and traffic reductions of
// AD/LS relative to the baseline in each model.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace lssim;

void run_model(const char* name, MachineConfig cfg,
               const WorkloadBuilder& build) {
  for (ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kPc}) {
    cfg.consistency = model;
    const auto results = bench::run_three(cfg, build);
    const RunResult& base = results[0];
    std::printf("%-6s %-3s", name, to_string(model));
    for (const auto& r : results) {
      std::printf("  %s exec %5.1f traffic %5.1f |", to_string(r.protocol),
                  normalized(r.exec_time, base.exec_time),
                  normalized(r.traffic_total, base.traffic_total));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace lssim;

  std::printf("== Consistency-model ablation (Baseline of each model = 100) "
              "==\n");
  Mp3dParams mp3d;
  mp3d.particles = 6000;
  mp3d.steps = 6;
  run_model("MP3D", MachineConfig::scientific_default(), [=](System& sys) {
    build_mp3d(sys, mp3d);
  });

  OltpParams oltp;
  oltp.txns_per_proc = 1200;
  run_model("OLTP", bench::oltp_bench_config(), [=](System& sys) {
    build_oltp(sys, oltp);
  });

  std::printf("\npaper §6: relaxed models shrink the write-stall (and thus "
              "execution-time)\nbenefit; the traffic reduction persists "
              "under any model.\n");
  return 0;
}
