// Cache-configuration variation analysis (paper §4.2 / §5.5): the paper
// simulated L1 sizes 4-64 kB, L2 sizes 64 kB-2 MB and block sizes
// 16-128 B. This sweep reproduces the stability claim: LS's advantage
// holds across configurations, shrinking as larger caches remove the
// replacement-broken load-store sequences.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace lssim;

  std::printf("== MP3D across L2 sizes (exec time, Baseline=100) ==\n");
  std::printf("%-10s %10s %10s %10s\n", "L2 size", "Baseline", "AD", "LS");
  Mp3dParams mp3d;
  mp3d.particles = 6000;
  mp3d.steps = 6;
  for (std::uint32_t l2_kb : {64u, 512u, 1024u, 2048u}) {
    MachineConfig cfg = MachineConfig::scientific_default();
    cfg.l2.size_bytes = l2_kb * 1024;
    const auto results = bench::run_three(
        cfg, [&](System& sys) { build_mp3d(sys, mp3d); });
    std::printf("%7u kB %10.1f %10.1f %10.1f\n", l2_kb, 100.0,
                normalized(results[1].exec_time, results[0].exec_time),
                normalized(results[2].exec_time, results[0].exec_time));
  }

  std::printf("\n== Cholesky across L2 sizes (write traffic, Baseline=100) "
              "==\n");
  std::printf("%-10s %10s %10s %10s\n", "L2 size", "Baseline", "AD", "LS");
  CholeskyParams chol;
  chol.n = 400;
  chol.bandwidth = 48;
  for (std::uint32_t l2_kb : {64u, 256u, 1024u}) {
    MachineConfig cfg = MachineConfig::scientific_default();
    cfg.l2.size_bytes = l2_kb * 1024;
    const auto results = bench::run_three(
        cfg, [&](System& sys) { build_cholesky(sys, chol); });
    std::printf(
        "%7u kB %10.1f %10.1f %10.1f\n", l2_kb, 100.0,
        normalized(results[1].traffic[1], results[0].traffic[1]),
        normalized(results[2].traffic[1], results[0].traffic[1]));
  }
  std::printf("\npaper: at larger caches (fewer replacements) LS's edge over "
              "AD shrinks (§5.2)\n");

  std::printf("\n== OLTP across L1 sizes (exec time, Baseline=100) ==\n");
  std::printf("%-10s %10s %10s %10s\n", "L1 size", "Baseline", "AD", "LS");
  OltpParams oltp;
  oltp.txns_per_proc = 1200;
  for (std::uint32_t l1_kb : {4u, 8u, 16u}) {
    MachineConfig cfg = bench::oltp_bench_config();
    cfg.l1.size_bytes = l1_kb * 1024;
    const auto results = bench::run_three(
        cfg, [&](System& sys) { build_oltp(sys, oltp); });
    std::printf("%7u kB %10.1f %10.1f %10.1f\n", l1_kb, 100.0,
                normalized(results[1].exec_time, results[0].exec_time),
                normalized(results[2].exec_time, results[0].exec_time));
  }
  std::printf("\npaper (§5.4): LS cuts OLTP execution time 13-14%% across "
              "cache configurations\n");
  return 0;
}
