// §5.5 variation analysis (ablations):
//   (a) default tagging of all memory blocks (LS and AD),
//   (b) the keep-LS-bit-on-lone-write de-tag heuristic,
//   (c) two-step hysteresis on tagging and on de-tagging.
//
// Paper findings to reproduce:
//   * default migratory tagging helps MP3D only a little; others unmoved.
//   * the alternative de-tag heuristic changes little.
//   * tag hysteresis does not improve performance; de-tag hysteresis
//     dramatically increases read misses -> tag/de-tag ASAP.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace {

using namespace lssim;

struct VariantSpec {
  std::string name;
  ProtocolKind kind;
  bool default_tagged = false;
  bool keep_tag_on_lone_write = false;
  std::uint8_t tag_hyst = 1;
  std::uint8_t detag_hyst = 1;
};

void run_workload(const char* title, const WorkloadBuilder& build,
                  MachineConfig base_cfg) {
  const VariantSpec variants[] = {
      {"LS", ProtocolKind::kLs},
      {"LS+default-tag", ProtocolKind::kLs, true},
      {"LS+keep-lone", ProtocolKind::kLs, false, true},
      {"LS+tag-hyst2", ProtocolKind::kLs, false, false, 2, 1},
      {"LS+detag-hyst2", ProtocolKind::kLs, false, false, 1, 2},
      {"AD", ProtocolKind::kAd},
      {"AD+default-tag", ProtocolKind::kAd, true},
      {"LS+AD", ProtocolKind::kLsAd},
      {"LS+AD+keep-lone", ProtocolKind::kLsAd, false, true},
  };

  base_cfg.protocol = ProtocolConfig{};
  const RunResult base = run_experiment(base_cfg, build);

  std::printf("== %s (Baseline = 100) ==\n", title);
  std::printf("%-16s %10s %10s %12s %12s\n", "variant", "exec", "traffic",
              "write-stall", "read-misses");
  for (const VariantSpec& v : variants) {
    MachineConfig cfg = base_cfg;
    cfg.protocol.kind = v.kind;
    cfg.protocol.default_tagged = v.default_tagged;
    cfg.protocol.keep_tag_on_lone_write = v.keep_tag_on_lone_write;
    cfg.protocol.tag_hysteresis = v.tag_hyst;
    cfg.protocol.detag_hysteresis = v.detag_hyst;
    const RunResult r = run_experiment(cfg, build);
    std::printf("%-16s %10.1f %10.1f %12.1f %12.1f\n", v.name.c_str(),
                normalized(r.exec_time, base.exec_time),
                normalized(r.traffic_total, base.traffic_total),
                normalized(r.time.write_stall, base.time.write_stall),
                normalized(r.global_read_misses, base.global_read_misses));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lssim;

  Mp3dParams mp3d;
  mp3d.particles = 4000;
  mp3d.steps = 6;
  run_workload("MP3D variations", [=](System& sys) {
    build_mp3d(sys, mp3d);
  }, MachineConfig::scientific_default());

  OltpParams oltp;
  oltp.txns_per_proc = 1200;
  run_workload("OLTP variations", [=](System& sys) {
    build_oltp(sys, oltp);
  }, bench::oltp_bench_config());

  std::printf("paper (§5.5): default tagging helps MP3D slightly; "
              "hysteresis never helps;\n"
              "de-tag hysteresis dramatically increases read misses.\n");
  return 0;
}
