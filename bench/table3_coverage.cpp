// Table 3: coverage of LS and AD for load-store and migratory sequences
// in the OLTP workload — the fraction of load-store (resp. migratory)
// global write actions each technique removes.
//
// Paper reference points:
//   LS: 57.6% of load-store writes removed, 100.0% of migratory.
//   AD: 31.7% of load-store writes removed,  47.6% of migratory.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace lssim;

  OltpParams params;
  std::printf("== Table 3: coverage for the OLTP workload ==\n");
  std::printf("%-10s %14s %14s\n", "technique", "load-store", "migratory");

  for (ProtocolKind kind : {ProtocolKind::kLs, ProtocolKind::kAd}) {
    MachineConfig cfg = bench::oltp_bench_config(kind);
    const RunResult r = run_experiment(
        cfg, [&](System& sys) { build_oltp(sys, params); });
    std::printf("%-10s %14s %14s\n", to_string(kind),
                pct(r.oracle_total.ls_coverage()).c_str(),
                pct(r.oracle_total.migratory_coverage()).c_str());
  }
  std::printf("\npaper: LS 57.6%% / 100.0%%;  AD 31.7%% / 47.6%%\n");
  return 0;
}
