// Load-store occurrence across ALL workloads (generalizing Table 2).
//
// The paper's central observation is that load-store sequences are a
// strict super-set of migratory sharing, and that the gap between the
// two is where LS beats AD. This bench measures, per workload under the
// Baseline protocol:
//   * the fraction of global write actions that are load-store,
//   * the migratory fraction of those,
// and then the coverage each technique achieves. Workloads span the
// whole spectrum: migratory-heavy (MP3D), non-migratory load-store
// (Cholesky, stencil), false-sharing-migratory (LU), mixed (OLTP), and
// lone-write (radix — where the whole family finds nothing).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "workloads/radix.hpp"
#include "workloads/stencil.hpp"

namespace {

using namespace lssim;

struct Entry {
  std::string name;
  MachineConfig cfg;
  WorkloadBuilder build;
};

}  // namespace

int main() {
  using namespace lssim;

  Mp3dParams mp3d;
  mp3d.particles = 6000;
  mp3d.steps = 6;
  CholeskyParams chol;  // Paper-scale defaults (n=600).
  LuParams lu;
  lu.n = 160;
  OltpParams oltp;
  oltp.txns_per_proc = 1500;
  StencilParams stencil;
  stencil.width = 256;  // 128 kB band per processor >> 64 kB L2.
  stencil.height = 256;
  stencil.sweeps = 4;
  RadixParams radix;
  radix.keys = 32768;

  const Entry entries[] = {
      {"mp3d", MachineConfig::scientific_default(),
       [=](System& sys) { build_mp3d(sys, mp3d); }},
      {"cholesky", MachineConfig::scientific_default(),
       [=](System& sys) { build_cholesky(sys, chol); }},
      {"lu", MachineConfig::scientific_default(),
       [=](System& sys) { build_lu(sys, lu); }},
      {"oltp", bench::oltp_bench_config(),
       [=](System& sys) { build_oltp(sys, oltp); }},
      {"stencil", MachineConfig::scientific_default(),
       [=](System& sys) { build_stencil(sys, stencil); }},
      {"radix", MachineConfig::scientific_default(),
       [=](System& sys) { build_radix(sys, radix); }},
  };

  std::printf("== Load-store occurrence and coverage by workload ==\n");
  std::printf("%-10s %10s %10s | %12s %12s\n", "workload",
              "ls-of-gw", "mig-of-ls", "LS coverage", "AD coverage");
  for (const Entry& e : entries) {
    MachineConfig cfg = e.cfg;
    const RunResult base = run_experiment(cfg, e.build);
    cfg.protocol.kind = ProtocolKind::kLs;
    const RunResult ls = run_experiment(cfg, e.build);
    cfg.protocol.kind = ProtocolKind::kAd;
    const RunResult ad = run_experiment(cfg, e.build);
    std::printf("%-10s %10s %10s | %12s %12s\n", e.name.c_str(),
                pct(base.oracle_total.ls_fraction()).c_str(),
                pct(base.oracle_total.migratory_fraction()).c_str(),
                pct(ls.oracle_total.ls_coverage()).c_str(),
                pct(ad.oracle_total.ls_coverage()).c_str());
  }
  std::printf(
      "\nReading: 'mig-of-ls' far below 100%% is the paper's opportunity\n"
      "gap; LS coverage should dominate AD coverage everywhere except\n"
      "purely migratory data, and both should be ~0 on radix.\n");
  return 0;
}
