// Figure 6: Behavior of LU (256x256) at 4 processors.
//
// Paper reference points (normalized to Baseline = 100):
//   execution time: Baseline 100, AD 94, LS 84 (−16%)
//   traffic:        Baseline 100, AD ~89, LS ~80 (−20%)
//   read misses:    Baseline 100, AD 101, LS 101 (+1%)
//   write stall:    AD removes ~50%, LS removes ~85% (15% remains).
// Driver: false sharing between adjacent columns owned by different
// processors creates an "illusion of migratory behaviour" AD partially
// catches; LS also catches the non-migratory load-store sequences.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  const int jobs = bench::parse_jobs(argc, argv);
  const bool replay = bench::parse_flag(argc, argv, "--replay");
  LuParams params;  // 256x256 (paper configuration).
  const MachineConfig cfg = MachineConfig::scientific_default();

  const auto build = [&](System& sys) { build_lu(sys, params); };
  const auto results = replay ? bench::run_three_replayed(cfg, build, jobs)
                              : bench::run_three(cfg, build, jobs);

  if (replay) {
    std::printf("note: --replay — protocols driven by one captured access "
                "stream (docs/PERFORMANCE.md)\n");
  }
  print_behavior_figure(std::cout, "LU (Figure 6)", results);
  bench::print_summary(results);
  std::printf("paper: exec 100/94/84, traffic 100/89/80, "
              "write stall -50%% (AD) / -85%% (LS)\n");
  return 0;
}
