// Extension workloads under all four techniques.
//
//  * stencil — in-place red-black relaxation: interior cells are
//    same-owner load-store sequences broken by capacity evictions; LS
//    territory, invisible to migratory detection.
//  * radix   — permutation writes are lone writes: a *negative control*
//    where no load-store technique should find much, and none should
//    hurt.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/radix.hpp"
#include "workloads/stencil.hpp"

namespace {

using namespace lssim;

void compare(const char* name, MachineConfig cfg,
             const WorkloadBuilder& build) {
  std::printf("== %s (Baseline = 100) ==\n", name);
  std::printf("%-10s %10s %10s %12s %12s %12s\n", "protocol", "exec",
              "traffic", "write-stall", "read-misses", "eliminated");
  RunResult base;
  for (ProtocolKind kind : {ProtocolKind::kBaseline, ProtocolKind::kAd,
                            ProtocolKind::kLs, ProtocolKind::kIls}) {
    cfg.protocol.kind = kind;
    const RunResult r = run_experiment(cfg, build);
    if (kind == ProtocolKind::kBaseline) base = r;
    std::printf("%-10s %10.1f %10.1f %12.1f %12.1f %12llu\n",
                to_string(kind), normalized(r.exec_time, base.exec_time),
                normalized(r.traffic_total, base.traffic_total),
                normalized(r.time.write_stall, base.time.write_stall),
                normalized(r.global_read_misses, base.global_read_misses),
                static_cast<unsigned long long>(r.eliminated_acquisitions));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lssim;

  StencilParams stencil;
  stencil.width = 192;
  stencil.height = 192;  // 288 kB grid >> 64 kB L2.
  stencil.sweeps = 6;
  compare("Stencil 192x192 (Ocean-style red-black relaxation)",
          MachineConfig::scientific_default(),
          [=](System& sys) { build_stencil(sys, stencil); });

  RadixParams radix;
  radix.keys = 65536;
  compare("Radix sort 64k keys (negative control)",
          MachineConfig::scientific_default(),
          [=](System& sys) { build_radix(sys, radix); });

  std::printf(
      "Expectations: the stencil favours LS heavily (AD has no migration\n"
      "to detect); radix moves for nobody — lone writes are not\n"
      "load-store sequences, and a technique claiming wins here would be\n"
      "over-fitting.\n");
  return 0;
}
