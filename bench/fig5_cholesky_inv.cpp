// Figure 5: invalidation traffic for Cholesky at 4, 16 and 32 processors.
//
// Paper reference points (per processor count, Baseline total = 100):
//   4p:  invalidations ~0% of overhead; Global Inv's dominate;
//        AD-4 = 100 (removes nothing), LS-4 = 6.
//   16p: invalidations 16% of total; AD-16 = 84, LS-16 = 44.
//   32p: invalidations 29% of total; AD-32 = 70, LS-32 = 44.
// Trend to reproduce: the invalidation share grows with P, and AD closes
// in on LS as migration (task-queue contention) appears.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace lssim;

  const int jobs = bench::parse_jobs(argc, argv);
  const bool replay = bench::parse_flag(argc, argv, "--replay");
  if (replay) {
    std::printf("note: --replay — protocols driven by one captured access "
                "stream per processor count (docs/PERFORMANCE.md)\n");
  }
  for (int procs : {4, 16, 32}) {
    CholeskyParams params;
    params.n = 600;
    params.bandwidth = 64;
    MachineConfig cfg = MachineConfig::scientific_default(
        ProtocolKind::kBaseline, procs);

    const auto build = [&](System& sys) { build_cholesky(sys, params); };
    std::vector<RunResult> results =
        replay ? bench::run_three_replayed(cfg, build, jobs)
               : bench::run_three(cfg, build, jobs);
    std::vector<std::string> labels;
    for (ProtocolKind kind : bench::kAllProtocols) {
      labels.push_back(std::string(to_string(kind)) + "-" +
                       std::to_string(procs));
    }
    print_invalidation_figure(std::cout,
                              "Cholesky @" + std::to_string(procs) + "p",
                              results, labels);
    const double inv_share =
        results[0].invalidations + results[0].ownership_acquisitions == 0
            ? 0.0
            : static_cast<double>(results[0].invalidations) /
                  static_cast<double>(results[0].invalidations +
                                      results[0].ownership_acquisitions);
    std::printf("invalidation share of ownership overhead (Baseline): %s\n\n",
                pct(inv_share).c_str());
  }
  std::printf("paper: share ~0%% @4p, 16%% @16p, 29%% @32p; "
              "AD 100/84/70, LS 6/44/44\n");
  return 0;
}
