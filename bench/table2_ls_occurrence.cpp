// Table 2: occurrence of load-store sequences and migratory behaviour in
// the OLTP workload, split into application (MySQL), libraries and OS.
//
// Paper reference points:
//   load-store of all global writes: MySQL 30.4%, Libraries 25.6%,
//                                    OS 47.6%, Total 42.0%
//   migratory of load-store:         MySQL 42.9%, Libraries 47.4%,
//                                    OS 51.1%, Total 47.1%
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace lssim;

  OltpParams params;
  const MachineConfig cfg = bench::oltp_bench_config();  // Baseline.
  const RunResult r = run_experiment(
      cfg, [&](System& sys) { build_oltp(sys, params); });

  std::printf("== Table 2: load-store occurrence in OLTP (Baseline) ==\n");
  std::printf("%-36s %9s %9s %9s %9s\n", "fraction of accesses", "app",
              "library", "os", "total");
  std::printf("%-36s %9s %9s %9s %9s\n", "load-store of global writes",
              pct(r.oracle_by_tag[0].ls_fraction()).c_str(),
              pct(r.oracle_by_tag[1].ls_fraction()).c_str(),
              pct(r.oracle_by_tag[2].ls_fraction()).c_str(),
              pct(r.oracle_total.ls_fraction()).c_str());
  std::printf("%-36s %9s %9s %9s %9s\n", "migratory of load-store",
              pct(r.oracle_by_tag[0].migratory_fraction()).c_str(),
              pct(r.oracle_by_tag[1].migratory_fraction()).c_str(),
              pct(r.oracle_by_tag[2].migratory_fraction()).c_str(),
              pct(r.oracle_total.migratory_fraction()).c_str());
  std::printf("\npaper: load-store 30.4 / 25.6 / 47.6 / 42.0 %%;"
              " migratory 42.9 / 47.4 / 51.1 / 47.1 %%\n");
  return 0;
}
