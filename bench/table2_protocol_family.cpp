// Table 2 extension: the three-way ownership split across the
// MESI/MOESI/Dragon protocol family — the experiment the paper never
// ran. Every write that needs the block made coherent resolves one of
// three ways:
//   acquired   — paid a global ownership acquisition (invalidations),
//   eliminated — completed locally on an exclusive copy a tagged read
//                had already fetched (the paper's LS payoff),
//   updated    — resolved as a write-update transaction (Dragon keeps
//                the remote copies alive instead of invalidating).
// The split is reported for the OLTP workload (Table 2's subject) under
// both coherence transports: the paper's point-to-point directory
// network and the snooping shared bus. The split is a protocol
// property: the transport changes timing (exec column) and therefore —
// OLTP's control flow reacts to timing — the absolute counts a little,
// but the split fractions stay put.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace lssim;

constexpr ProtocolKind kFamily[] = {
    ProtocolKind::kBaseline, ProtocolKind::kLs,      ProtocolKind::kMesi,
    ProtocolKind::kMoesi,    ProtocolKind::kDragon,  ProtocolKind::kLsMesi,
    ProtocolKind::kLsDragon,
};

void print_split(const std::vector<RunResult>& results) {
  std::printf("  %-10s %9s %18s %18s %18s %7s\n", "protocol", "writes",
              "acquired", "eliminated", "updated", "exec");
  const RunResult& base = results.front();
  for (const RunResult& r : results) {
    const std::uint64_t total = r.ownership_acquisitions +
                                r.eliminated_acquisitions +
                                r.update_transactions;
    const auto share = [total](std::uint64_t n) {
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(n) /
                              static_cast<double>(total);
    };
    std::printf(
        "  %-10s %9llu %10llu (%4.1f%%) %10llu (%4.1f%%) %10llu (%4.1f%%) "
        "%7.1f\n",
        to_string(r.protocol),
        static_cast<unsigned long long>(r.global_write_actions),
        static_cast<unsigned long long>(r.ownership_acquisitions),
        share(r.ownership_acquisitions),
        static_cast<unsigned long long>(r.eliminated_acquisitions),
        share(r.eliminated_acquisitions),
        static_cast<unsigned long long>(r.update_transactions),
        share(r.update_transactions),
        normalized(r.exec_time, base.exec_time));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lssim;
  const int jobs = bench::parse_jobs(argc, argv);

  OltpParams params;
  const auto build = [&](System& sys) { build_oltp(sys, params); };

  std::printf("== Table 2 extension: ownership split, MESI/MOESI/Dragon "
              "family (OLTP) ==\n");
  std::printf("share columns: of all ownership events "
              "(acquired + eliminated + updated); exec: Baseline = 100 "
              "per transport\n");
  for (const InterconnectKind net :
       {InterconnectKind::kNetwork, InterconnectKind::kBus}) {
    MachineConfig cfg = bench::oltp_bench_config();
    cfg.interconnect = net;
    std::printf("\n-- %s --\n", interconnect_name(net));
    print_split(run_experiments(cfg, build, kFamily, /*seed=*/1, jobs));
  }
  std::printf(
      "\nthe split fractions are transport-invariant (counts drift with "
      "timing feedback); LS tagging moves Dragon's updated share into "
      "eliminated local writes\n");
  return 0;
}
