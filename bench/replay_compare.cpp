// replay_compare — times the capture-once / replay-many engine against
// execution-driven protocol sweeps (docs/PERFORMANCE.md).
//
// For each workload it runs the full registered-protocol sweep twice:
// once execution-driven (the figure binaries' default path) and once by
// capturing the access stream a single time and replaying it per
// protocol, serial and at --jobs. The same-protocol replay must be
// bit-identical to its live execution — any disagreement is printed
// field by field and the bench exits 1.
//
//   replay_compare [--quick] [--jobs N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace lssim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Spec {
  const char* name;
  MachineConfig cfg;
  WorkloadBuilder build;
};

std::vector<Spec> build_specs(bool quick) {
  std::vector<Spec> specs;

  Mp3dParams mp3d;
  if (quick) {
    mp3d.particles = 2000;
    mp3d.steps = 3;
  }
  specs.push_back({"mp3d", MachineConfig::scientific_default(),
                   [mp3d](System& sys) { build_mp3d(sys, mp3d); }});

  LuParams lu;
  if (quick) {
    lu.n = 96;
  }
  specs.push_back({"lu", MachineConfig::scientific_default(),
                   [lu](System& sys) { build_lu(sys, lu); }});

  OltpParams oltp;
  if (quick) {
    oltp.txns_per_proc = 300;
  }
  specs.push_back({"oltp", bench::oltp_bench_config(),
                   [oltp](System& sys) { build_oltp(sys, oltp); }});

  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lssim;

  const int jobs = bench::parse_jobs(argc, argv);
  const bool quick = bench::parse_flag(argc, argv, "--quick");
  const std::vector<ProtocolKind> kinds = all_protocol_kinds();

  std::printf("capture-once / replay-many vs execution-driven "
              "(%zu protocols%s)\n\n",
              kinds.size(), quick ? ", quick sizes" : "");
  std::printf("%-8s %10s %10s %10s %10s %9s %9s\n", "workload", "execute",
              "capture", "replay", "replay-j", "speedup", "w/capture");

  bool all_agree = true;
  for (const Spec& spec : build_specs(quick)) {
    const auto exec_start = Clock::now();
    std::vector<RunResult> executed;
    executed.reserve(kinds.size());
    for (ProtocolKind kind : kinds) {
      MachineConfig cfg = spec.cfg;
      cfg.protocol.kind = kind;
      executed.push_back(run_experiment(cfg, spec.build, /*seed=*/1));
    }
    const double execute_s = seconds_since(exec_start);

    const auto capture_start = Clock::now();
    const CapturedTrace captured =
        capture_trace(spec.cfg, spec.build, /*seed=*/1, spec.name);
    const double capture_s = seconds_since(capture_start);

    const ReplayCompareEngine engine(captured.trace, spec.cfg);
    const auto replay_start = Clock::now();
    std::vector<RunResult> replayed;
    replayed.reserve(kinds.size());
    for (ProtocolKind kind : kinds) {
      replayed.push_back(engine.replay(kind));
    }
    const double replay_s = seconds_since(replay_start);

    const auto fanout_start = Clock::now();
    const std::vector<RunResult> fanned =
        engine.replay_matrix(kinds, {}, jobs);
    const double fanout_s = seconds_since(fanout_start);

    // Gate 1: the capture protocol's replay is bit-identical to its
    // live execution.
    const auto base_it =
        std::find(kinds.begin(), kinds.end(), spec.cfg.protocol.kind);
    const std::size_t base_idx =
        static_cast<std::size_t>(base_it - kinds.begin());
    for (const std::string& diff :
         compare_replay(captured.executed, replayed[base_idx])) {
      std::fprintf(stderr, "replay_compare: %s (%s): %s\n", spec.name,
                   to_string(spec.cfg.protocol.kind), diff.c_str());
      all_agree = false;
    }
    // Gate 2: the parallel fan-out matches the serial replay per cell.
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      for (const std::string& diff :
           compare_replay(replayed[i], fanned[i])) {
        std::fprintf(stderr,
                     "replay_compare: %s (%s): serial/parallel replay "
                     "mismatch: %s\n",
                     spec.name, to_string(kinds[i]), diff.c_str());
        all_agree = false;
      }
    }

    std::printf("%-8s %9.2fs %9.2fs %9.2fs %9.2fs %8.2fx %8.2fx\n",
                spec.name, execute_s, capture_s, replay_s, fanout_s,
                replay_s > 0 ? execute_s / replay_s : 0.0,
                capture_s + replay_s > 0
                    ? execute_s / (capture_s + replay_s)
                    : 0.0);
  }

  if (!all_agree) {
    std::fprintf(stderr,
                 "replay_compare: replay disagreed with execution\n");
    return 1;
  }
  std::printf("\nsame-protocol replays bit-identical to execution; "
              "parallel fan-out identical to serial\n");
  return 0;
}
